#include "linalg/solve.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace srp {
namespace {

TEST(SolveLinearSystemTest, KnownSolution) {
  Matrix a{{3, 1}, {1, 2}};
  auto x = SolveLinearSystem(a, {9, 8});  // x = (2, 3)
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LeastSquaresTest, ExactRecoveryOnNoiselessData) {
  // y = 2 x0 - 3 x1 + 0.5 x2
  Rng rng(99);
  const size_t n = 50;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x(i, c) = rng.Normal();
    y[i] = 2.0 * x(i, 0) - 3.0 * x(i, 1) + 0.5 * x(i, 2);
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-9);
  EXPECT_NEAR((*beta)[1], -3.0, 1e-9);
  EXPECT_NEAR((*beta)[2], 0.5, 1e-9);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
  // Single column of ones: LS solution is the mean of y.
  Matrix x(4, 1, 1.0);
  auto beta = LeastSquares(x, {1, 2, 3, 6});
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-12);
}

TEST(LeastSquaresTest, RejectsShapeMismatch) {
  Matrix x(3, 1, 1.0);
  EXPECT_FALSE(LeastSquares(x, {1, 2}).ok());
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix x(2, 5);
  EXPECT_FALSE(LeastSquares(x, {1, 2}).ok());
}

TEST(LeastSquaresTest, CollinearColumnsFallBackToRidge) {
  // Two identical columns: X'X singular; the ridge fallback must still give
  // a finite solution whose predictions fit y.
  const size_t n = 20;
  Rng rng(7);
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.Normal();
    x(i, 0) = v;
    x(i, 1) = v;
    y[i] = 3.0 * v;
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  // Prediction (not coefficients) must be right: b0 + b1 ~= 3.
  EXPECT_NEAR((*beta)[0] + (*beta)[1], 3.0, 1e-3);
}

TEST(WeightedLeastSquaresTest, MatchesOlsWithUnitWeights) {
  Rng rng(11);
  const size_t n = 30;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = 1.5 * x(i, 0) - 0.7 * x(i, 1) + 0.01 * rng.Normal();
  }
  auto ols = LeastSquares(x, y);
  auto wls = WeightedLeastSquares(x, y, std::vector<double>(n, 1.0));
  ASSERT_TRUE(ols.ok());
  ASSERT_TRUE(wls.ok());
  EXPECT_NEAR((*ols)[0], (*wls)[0], 1e-9);
  EXPECT_NEAR((*ols)[1], (*wls)[1], 1e-9);
}

TEST(WeightedLeastSquaresTest, ZeroWeightIgnoresOutlier) {
  // y = 2x with one wild outlier that gets zero weight.
  Matrix x(5, 1);
  std::vector<double> y(5);
  std::vector<double> w(5, 1.0);
  for (size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    y[i] = 2.0 * x(i, 0);
  }
  y[4] = 1000.0;
  w[4] = 0.0;
  auto beta = WeightedLeastSquares(x, y, w);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-9);
}

TEST(WeightedLeastSquaresTest, RejectsSizeMismatch) {
  Matrix x(3, 1, 1.0);
  EXPECT_FALSE(WeightedLeastSquares(x, {1, 2, 3}, {1, 1}).ok());
}

}  // namespace
}  // namespace srp
