#include "metrics/clustering_agreement.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(ClusteringCorrectnessTest, IdenticalLabelingsScore100) {
  EXPECT_DOUBLE_EQ(
      ClusteringCorrectnessPercent({0, 0, 1, 1, 2}, {0, 0, 1, 1, 2}), 100.0);
}

TEST(ClusteringCorrectnessTest, PermutedLabelsStillScore100) {
  // Same partition, renamed cluster ids.
  EXPECT_DOUBLE_EQ(
      ClusteringCorrectnessPercent({0, 0, 1, 1, 2}, {2, 2, 0, 0, 1}), 100.0);
}

TEST(ClusteringCorrectnessTest, KnownPartialOverlap) {
  // Original: {0,0,0,1,1,1}; reduced: {0,0,1,1,1,1}.
  // Best matching: reduced 0 -> orig 0 (2 cells), reduced 1 -> orig 1
  // (3 cells) -> 5/6.
  EXPECT_NEAR(
      ClusteringCorrectnessPercent({0, 0, 0, 1, 1, 1}, {0, 0, 1, 1, 1, 1}),
      100.0 * 5.0 / 6.0, 1e-9);
}

TEST(ClusteringCorrectnessTest, CompletelyMixedIsLow) {
  // Reduced lumps everything into one cluster vs 4 original clusters:
  // only one original cluster can be matched -> 25%.
  EXPECT_DOUBLE_EQ(
      ClusteringCorrectnessPercent({0, 1, 2, 3}, {0, 0, 0, 0}), 25.0);
}

TEST(ClusteringCorrectnessTest, MoreReducedThanOriginalClusters) {
  // Reduced splits one original cluster in two: best match keeps 3/4.
  EXPECT_DOUBLE_EQ(
      ClusteringCorrectnessPercent({0, 0, 1, 1}, {0, 1, 2, 2}), 75.0);
}

TEST(RandIndexTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(RandIndex({0, 0, 1, 1}, {5, 5, 9, 9}), 1.0);
}

TEST(RandIndexTest, KnownValue) {
  // labels_a = {0,0,1,1}, labels_b = {0,1,1,1}:
  // pairs: (0,1) together in a, apart in b -> disagree.
  //        (0,2),(0,3),(1,2),(1,3): (1,2) apart/together -> disagree,
  //        (1,3) apart/together -> disagree, (0,2),(0,3) apart/apart agree.
  //        (2,3) together/together agree.
  // agreements = 3 of 6.
  EXPECT_NEAR(RandIndex({0, 0, 1, 1}, {0, 1, 1, 1}), 0.5, 1e-12);
}

TEST(RandIndexTest, SingletonsVsLumped) {
  // All singletons vs all together: every pair disagrees -> 0.
  EXPECT_DOUBLE_EQ(RandIndex({0, 1, 2}, {0, 0, 0}), 0.0);
}

}  // namespace
}  // namespace srp
