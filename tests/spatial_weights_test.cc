#include "ml/spatial_weights.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

std::vector<std::vector<int32_t>> PathGraph4() {
  return {{1}, {0, 2}, {1, 3}, {2}};
}

TEST(SpatialWeightsTest, RowStandardizedLagIsNeighborAverage) {
  const SpatialWeights w(PathGraph4());
  const auto lag = w.Lag({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(lag[0], 2.0);
  EXPECT_DOUBLE_EQ(lag[1], 2.0);  // (1+3)/2
  EXPECT_DOUBLE_EQ(lag[2], 3.0);  // (2+4)/2
  EXPECT_DOUBLE_EQ(lag[3], 3.0);
}

TEST(SpatialWeightsTest, BinaryWeightsSumNeighbors) {
  const SpatialWeights w(PathGraph4(), /*row_standardize=*/false);
  const auto lag = w.Lag({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(lag[1], 4.0);  // 1 + 3
}

TEST(SpatialWeightsTest, IsolatedUnitHasZeroLag) {
  std::vector<std::vector<int32_t>> adj = {{1}, {0}, {}};
  const SpatialWeights w(adj);
  const auto lag = w.Lag({5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(lag[2], 0.0);
}

TEST(SpatialWeightsTest, LagMatrixMatchesColumnwiseLag) {
  const SpatialWeights w(PathGraph4());
  Matrix x(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    x(i, 1) = static_cast<double>((i + 1) * (i + 1));
  }
  const Matrix wx = w.LagMatrix(x);
  const auto col0 = w.Lag(x.Column(0));
  const auto col1 = w.Lag(x.Column(1));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(wx(i, 0), col0[i]);
    EXPECT_DOUBLE_EQ(wx(i, 1), col1[i]);
  }
}

TEST(SpatialWeightsTest, ConstantVectorIsFixedPointOfLag) {
  // Row-standardized W has row sums 1 (where neighbors exist), so lagging a
  // constant reproduces it.
  const SpatialWeights w(PathGraph4());
  const auto lag = w.Lag({3.0, 3.0, 3.0, 3.0});
  for (double v : lag) EXPECT_DOUBLE_EQ(v, 3.0);
}

}  // namespace
}  // namespace srp
