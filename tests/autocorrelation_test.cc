#include "metrics/autocorrelation.h"

#include <gtest/gtest.h>

#include "core/adjacency.h"
#include "data/gaussian_field.h"

namespace srp {
namespace {

std::vector<double> Checkerboard(size_t rows, size_t cols) {
  std::vector<double> x(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      x[r * cols + c] = static_cast<double>((r + c) % 2);
    }
  }
  return x;
}

TEST(MoransITest, CheckerboardIsStronglyNegative) {
  const auto adj = GridCellAdjacency(8, 8);
  EXPECT_LT(MoransI(Checkerboard(8, 8), adj), -0.9);
}

TEST(MoransITest, SmoothGradientIsStronglyPositive) {
  const size_t n = 10;
  const auto adj = GridCellAdjacency(n, n);
  std::vector<double> x(n * n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      x[r * n + c] = static_cast<double>(r + c);
    }
  }
  EXPECT_GT(MoransI(x, adj), 0.7);
}

TEST(MoransITest, ConstantFieldIsZero) {
  const auto adj = GridCellAdjacency(5, 5);
  EXPECT_DOUBLE_EQ(MoransI(std::vector<double>(25, 3.0), adj), 0.0);
}

TEST(MoransITest, NoLinksIsZero) {
  std::vector<std::vector<int32_t>> empty_adj(4);
  EXPECT_DOUBLE_EQ(MoransI({1, 2, 3, 4}, empty_adj), 0.0);
}

TEST(MoransITest, GeneratedFieldIsAutocorrelated) {
  // The synthetic data substrate must exhibit the positive spatial
  // autocorrelation the paper's datasets have — this is the property that
  // justifies the substitution (DESIGN.md §3).
  FieldOptions options;
  options.rows = 32;
  options.cols = 32;
  options.seed = 12;
  const auto field = GenerateAutocorrelatedField(options);
  const auto adj = GridCellAdjacency(32, 32);
  EXPECT_GT(MoransI(field, adj), 0.5);
}

TEST(GearysCTest, CheckerboardAboveOne) {
  const auto adj = GridCellAdjacency(8, 8);
  EXPECT_GT(GearysC(Checkerboard(8, 8), adj), 1.5);
}

TEST(GearysCTest, SmoothFieldBelowOne) {
  FieldOptions options;
  options.rows = 24;
  options.cols = 24;
  options.seed = 3;
  const auto field = GenerateAutocorrelatedField(options);
  const auto adj = GridCellAdjacency(24, 24);
  EXPECT_LT(GearysC(field, adj), 0.5);
}

TEST(GearysCTest, ConstantFieldIsOne) {
  const auto adj = GridCellAdjacency(4, 4);
  EXPECT_DOUBLE_EQ(GearysC(std::vector<double>(16, 2.0), adj), 1.0);
}

}  // namespace
}  // namespace srp
