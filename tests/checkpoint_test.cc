// Tests for durable checkpoint/resume (DESIGN.md §13): bit-exact on-disk
// round-trips, crash-consistency under injected write/fsync/rename faults
// and post-rename truncation, bounded retry with an injectable clock, and —
// the contract the whole subsystem exists for — that a run resumed from any
// committed snapshot (periodic, interrupt-time, or recovered after SIGKILL)
// finishes bit-identically to the uninterrupted run at every thread count
// and SIMD tier.
//
// Suite names deliberately avoid the TSan CI filter's substrings: the
// kill–resume test forks and fork()-then-SIGKILL is not supportable under
// TSan.

#include "fail/checkpoint.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kernels/kernels.h"
#include "core/repartitioner.h"
#include "fail/cancellation.h"
#include "fail/fault_injection.h"
#include "grid/grid_dataset.h"
#include "obs/introspect.h"
#include "obs/journal.h"

namespace srp {
namespace {

/// A grid with enough variation structure to sustain ~40 coarsening
/// iterations — the smooth r+c ramp collapses in 2, far too few to place a
/// checkpoint strictly inside the run.
GridDataset BumpyGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0,
            100.0 + static_cast<double>((r * 31 + c * 17 + (r * c) % 7) % 23));
    }
  }
  return g;
}

RepartitionOptions BaseOptions() {
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.num_threads = 1;
  return options;
}

/// CheckpointSink that keeps every snapshot (the struct owns copies, so
/// holding on to them is within the OnCheckpoint contract).
class RecordingSink : public CheckpointSink {
 public:
  Status OnCheckpoint(const RepartitionCheckpoint& state,
                      SnapshotReason reason) override {
    snapshots.push_back(state);
    reasons.push_back(reason);
    return Status::OK();
  }

  std::vector<RepartitionCheckpoint> snapshots;
  std::vector<CheckpointSink::SnapshotReason> reasons;
};

bool BitsEq(double a, double b) {
  uint64_t ba = 0;
  uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

/// Bit-level equality of two run results — not EXPECT_DOUBLE_EQ, the actual
/// resume contract: identical IEEE-754 bits everywhere.
void ExpectBitIdentical(const RepartitionResult& want,
                        const RepartitionResult& got) {
  EXPECT_EQ(want.iterations, got.iterations);
  EXPECT_TRUE(BitsEq(want.information_loss, got.information_loss))
      << want.information_loss << " vs " << got.information_loss;
  EXPECT_TRUE(BitsEq(want.final_min_adjacent_variation,
                     got.final_min_adjacent_variation));
  EXPECT_EQ(want.partition.rows, got.partition.rows);
  EXPECT_EQ(want.partition.cols, got.partition.cols);
  EXPECT_TRUE(want.partition.groups == got.partition.groups);
  EXPECT_TRUE(want.partition.cell_to_group == got.partition.cell_to_group);
  EXPECT_TRUE(want.partition.group_null == got.partition.group_null);
  EXPECT_TRUE(want.partition.group_valid_count ==
              got.partition.group_valid_count);
  ASSERT_EQ(want.partition.features.size(), got.partition.features.size());
  for (size_t g = 0; g < want.partition.features.size(); ++g) {
    ASSERT_EQ(want.partition.features[g].size(),
              got.partition.features[g].size())
        << g;
    for (size_t k = 0; k < want.partition.features[g].size(); ++k) {
      EXPECT_TRUE(
          BitsEq(want.partition.features[g][k], got.partition.features[g][k]))
          << "group " << g << " attr " << k;
    }
  }
}

/// Fresh empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Runs the repartitioner with checkpoint_every=1 and returns all periodic
/// snapshots (one per accepted iteration) plus the final result.
std::vector<RepartitionCheckpoint> SnapshotEveryIteration(
    const GridDataset& grid, RepartitionResult* final_result) {
  RecordingSink sink;
  RepartitionOptions options = BaseOptions();
  options.checkpoint = &sink;
  options.checkpoint_every = 1;
  auto result = Repartitioner(options).Run(grid);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && final_result != nullptr) *final_result = *result;
  return sink.snapshots;
}

/// One mid-run snapshot wrapped as the durable layer stores it.
StoredCheckpoint MakeStored(const GridDataset& grid) {
  StoredCheckpoint stored;
  std::vector<RepartitionCheckpoint> snapshots =
      SnapshotEveryIteration(grid, nullptr);
  EXPECT_GE(snapshots.size(), 3u);
  if (!snapshots.empty()) stored.state = snapshots[snapshots.size() / 2];
  stored.grid_fingerprint = GridFingerprint(grid);
  stored.options_fingerprint = OptionsFingerprint(BaseOptions());
  return stored;
}

/// RetryClock that records requested sleeps instead of performing them.
class FakeRetryClock : public RetryClock {
 public:
  void SleepMillis(uint64_t millis) override { sleeps.push_back(millis); }
  std::vector<uint64_t> sleeps;
};

/// Disarms the process-wide injector on scope exit, so a failing assertion
/// cannot leak armed checkpoint faults into later tests.
struct DisarmOnExit {
  ~DisarmOnExit() { FaultInjector::Get().Disarm(); }
};

TEST(CheckpointTest, Crc32MatchesTheReferenceVectorAndChains) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  const char* digits = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xCBF43926u);
  // Seedable: hashing a split buffer in two calls equals one pass.
  EXPECT_EQ(Crc32(digits + 4, 5, Crc32(digits, 4)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(CheckpointTest, GridFingerprintTracksContentNotIdentity) {
  const GridDataset a = BumpyGrid(8, 8);
  const GridDataset b = BumpyGrid(8, 8);
  EXPECT_EQ(GridFingerprint(a), GridFingerprint(b));

  GridDataset changed = BumpyGrid(8, 8);
  changed.Set(3, 3, 0, 999.0);
  EXPECT_NE(GridFingerprint(a), GridFingerprint(changed));

  EXPECT_NE(GridFingerprint(a), GridFingerprint(BumpyGrid(8, 9)));
}

TEST(CheckpointTest, OptionsFingerprintCoversOnlyMergeRelevantKnobs) {
  RepartitionOptions base = BaseOptions();
  const uint64_t fp = OptionsFingerprint(base);

  // Excluded knobs: a resumed run may extend the budget, change thread
  // count or snapshot cadence — results are bit-identical regardless.
  RepartitionOptions tweaked = base;
  tweaked.max_iterations = 7;
  tweaked.num_threads = 8;
  tweaked.checkpoint_every = 3;
  EXPECT_EQ(fp, OptionsFingerprint(tweaked));

  RepartitionOptions different_theta = base;
  different_theta.ifl_threshold = 0.2;
  EXPECT_NE(fp, OptionsFingerprint(different_theta));

  RepartitionOptions different_step = base;
  different_step.min_variation_step = 0.01;
  EXPECT_NE(fp, OptionsFingerprint(different_step));
}

TEST(CheckpointTest, FileRoundTripIsBitExact) {
  const GridDataset grid = BumpyGrid(8, 8);
  const StoredCheckpoint stored = MakeStored(grid);
  const std::string path = FreshDir("ckpt_roundtrip") + "/state.srpckpt";

  ASSERT_TRUE(WriteCheckpointFile(path, stored).ok());
  auto loaded = ReadCheckpointFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->grid_fingerprint, stored.grid_fingerprint);
  EXPECT_EQ(loaded->options_fingerprint, stored.options_fingerprint);
  EXPECT_EQ(loaded->state.generation, stored.state.generation);
  EXPECT_EQ(loaded->state.iterations, stored.state.iterations);
  EXPECT_TRUE(
      BitsEq(loaded->state.previous_variation, stored.state.previous_variation));
  EXPECT_TRUE(
      BitsEq(loaded->state.information_loss, stored.state.information_loss));
  EXPECT_TRUE(BitsEq(loaded->state.final_min_adjacent_variation,
                     stored.state.final_min_adjacent_variation));
  EXPECT_TRUE(loaded->state.partition.groups == stored.state.partition.groups);
  EXPECT_TRUE(loaded->state.partition.cell_to_group ==
              stored.state.partition.cell_to_group);
  ASSERT_EQ(loaded->state.partition.features.size(),
            stored.state.partition.features.size());
  for (size_t g = 0; g < stored.state.partition.features.size(); ++g) {
    for (size_t k = 0; k < stored.state.partition.features[g].size(); ++k) {
      EXPECT_TRUE(BitsEq(loaded->state.partition.features[g][k],
                         stored.state.partition.features[g][k]));
    }
  }
  EXPECT_TRUE(loaded->state.ValidateFor(grid).ok());
}

TEST(CheckpointTest, ReadRejectsMissingAndNonCheckpointFiles) {
  const std::string dir = FreshDir("ckpt_badfiles");
  EXPECT_FALSE(ReadCheckpointFile(dir + "/absent.srpckpt").ok());

  const std::string garbage = dir + "/garbage.srpckpt";
  std::ofstream(garbage) << "definitely not a checkpoint";
  auto loaded = ReadCheckpointFile(garbage);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos)
      << loaded.status().ToString();
}

TEST(CheckpointTest, FileNamesAreFixedWidthAndListingSkipsJunk) {
  EXPECT_EQ(CheckpointFileName(7), "ckpt-000000000007.srpckpt");
  EXPECT_EQ(CheckpointFileName(123456), "ckpt-000000123456.srpckpt");

  const std::string dir = FreshDir("ckpt_listing");
  const StoredCheckpoint stored = MakeStored(BumpyGrid(8, 8));
  ASSERT_TRUE(WriteCheckpointFile(CheckpointFilePath(dir, 3), stored).ok());
  ASSERT_TRUE(WriteCheckpointFile(CheckpointFilePath(dir, 1), stored).ok());
  std::ofstream(dir + "/README") << "junk";
  std::ofstream(dir + "/ckpt-bad.srpckpt") << "junk";
  std::ofstream(dir + "/ckpt-000000000002.srpckpt.tmp") << "junk";

  const auto files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].first, 1u);
  EXPECT_EQ(files[1].first, 3u);

  EXPECT_TRUE(ListCheckpointFiles(dir + "/no_such_subdir").empty());
  EXPECT_EQ(LoadLatestCheckpoint(FreshDir("ckpt_empty")).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, WriterAssignsMonotonicGenerationsAndPrunes) {
  const std::string dir = FreshDir("ckpt_writer");
  const GridDataset grid = BumpyGrid(8, 8);
  const StoredCheckpoint stored = MakeStored(grid);

  CheckpointWriter::Options wopt;
  wopt.directory = dir;
  wopt.keep_generations = 2;
  CheckpointWriter writer(wopt);
  EXPECT_EQ(writer.OnCheckpoint(stored.state,
                                CheckpointSink::SnapshotReason::kPeriodic)
                .code(),
            StatusCode::kFailedPrecondition)
      << "OnCheckpoint before Init must fail";

  ASSERT_TRUE(writer.Init().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(writer
                    .OnCheckpoint(stored.state,
                                  CheckpointSink::SnapshotReason::kPeriodic)
                    .ok());
  }
  EXPECT_EQ(writer.latest_generation(), 2);
  EXPECT_EQ(writer.writes(), 3u);
  EXPECT_EQ(obs::Journal::checkpoint_generation(), 2);

  // keep_generations=2 pruned generation 0.
  const auto files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].first, 1u);
  EXPECT_EQ(files[1].first, 2u);

  // A new writer on the same directory (the resume scenario) continues
  // strictly above what is already durable.
  CheckpointWriter second(wopt);
  ASSERT_TRUE(second.Init().ok());
  ASSERT_TRUE(second
                  .OnCheckpoint(stored.state,
                                CheckpointSink::SnapshotReason::kInterrupt)
                  .ok());
  EXPECT_EQ(second.latest_generation(), 3);

  // The stored generation matches the file that carries it.
  auto latest = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->state.generation, 3u);
}

TEST(CheckpointTest, InjectedIoFaultsLeaveThePreviousGenerationIntact) {
  const GridDataset grid = BumpyGrid(8, 8);
  const StoredCheckpoint stored = MakeStored(grid);

  for (const char* point :
       {"checkpoint.write", "checkpoint.fsync", "checkpoint.rename"}) {
    SCOPED_TRACE(point);
    DisarmOnExit disarm;
    const std::string dir = FreshDir("ckpt_atomic");

    FakeRetryClock clock;
    CheckpointWriter::Options wopt;
    wopt.directory = dir;
    wopt.max_attempts = 1;
    wopt.clock = &clock;
    wopt.grid_fingerprint = GridFingerprint(grid);
    CheckpointWriter writer(wopt);
    ASSERT_TRUE(writer.Init().ok());
    ASSERT_TRUE(writer
                    .OnCheckpoint(stored.state,
                                  CheckpointSink::SnapshotReason::kPeriodic)
                    .ok());

    ASSERT_TRUE(FaultInjector::Get()
                    .ArmFromSpec(std::string(point) + ":error:1")
                    .ok());
    const Status failed = writer.OnCheckpoint(
        stored.state, CheckpointSink::SnapshotReason::kPeriodic);
    EXPECT_FALSE(failed.ok());
    EXPECT_NE(failed.ToString().find("injected fault"), std::string::npos);
    EXPECT_EQ(writer.failed_attempts(), 1u);

    // The failed attempt left no temp litter and generation 0 untouched.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_EQ(entry.path().filename().string(), CheckpointFileName(0));
    }
    auto survivor = LoadLatestCheckpoint(dir);
    ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
    EXPECT_EQ(survivor->state.generation, 0u);
    EXPECT_EQ(survivor->grid_fingerprint, GridFingerprint(grid));
  }
}

TEST(CheckpointTest, BoundedRetryBacksOffAndSucceedsPastTransientFaults) {
  DisarmOnExit disarm;
  const std::string dir = FreshDir("ckpt_retry_ok");
  const StoredCheckpoint stored = MakeStored(BumpyGrid(8, 8));

  // Two consecutive write failures (the ascending-nth multi-spec idiom),
  // three attempts allowed: the third lands.
  ASSERT_TRUE(FaultInjector::Get()
                  .ArmFromSpec("checkpoint.write:error:1,checkpoint.write:error:2")
                  .ok());
  FakeRetryClock clock;
  CheckpointWriter::Options wopt;
  wopt.directory = dir;
  wopt.max_attempts = 3;
  wopt.backoff_millis = 10;
  wopt.clock = &clock;
  CheckpointWriter writer(wopt);
  ASSERT_TRUE(writer.Init().ok());
  ASSERT_TRUE(writer
                  .OnCheckpoint(stored.state,
                                CheckpointSink::SnapshotReason::kPeriodic)
                  .ok());
  EXPECT_EQ(writer.failed_attempts(), 2u);
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_EQ(FaultInjector::Get().fired_count(), 2u);
  // Exponential backoff between attempts: 10ms, then 20ms.
  EXPECT_EQ(clock.sleeps, (std::vector<uint64_t>{10, 20}));
  EXPECT_TRUE(LoadLatestCheckpoint(dir).ok());
}

TEST(CheckpointTest, RetryExhaustionSurfacesTheLastError) {
  DisarmOnExit disarm;
  const std::string dir = FreshDir("ckpt_retry_exhaust");
  const StoredCheckpoint stored = MakeStored(BumpyGrid(8, 8));

  ASSERT_TRUE(FaultInjector::Get()
                  .ArmFromSpec("checkpoint.write:error:1,"
                               "checkpoint.write:error:2,"
                               "checkpoint.write:error:3")
                  .ok());
  FakeRetryClock clock;
  CheckpointWriter::Options wopt;
  wopt.directory = dir;
  wopt.max_attempts = 3;
  wopt.backoff_millis = 10;
  wopt.clock = &clock;
  CheckpointWriter writer(wopt);
  ASSERT_TRUE(writer.Init().ok());
  const Status failed = writer.OnCheckpoint(
      stored.state, CheckpointSink::SnapshotReason::kPeriodic);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.ToString().find("injected fault"), std::string::npos);
  EXPECT_EQ(writer.failed_attempts(), 3u);
  EXPECT_EQ(writer.writes(), 0u);
  EXPECT_EQ(clock.sleeps.size(), 2u) << "no sleep after the final attempt";
  EXPECT_EQ(LoadLatestCheckpoint(dir).status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, PostRenameTruncationIsCaughtByCrcAndFallsBack) {
  DisarmOnExit disarm;
  const std::string dir = FreshDir("ckpt_torn");
  const GridDataset grid = BumpyGrid(8, 8);
  const StoredCheckpoint stored = MakeStored(grid);

  CheckpointWriter::Options wopt;
  wopt.directory = dir;
  CheckpointWriter writer(wopt);
  ASSERT_TRUE(writer.Init().ok());
  ASSERT_TRUE(writer
                  .OnCheckpoint(stored.state,
                                CheckpointSink::SnapshotReason::kPeriodic)
                  .ok());

  // The torn-write simulation: the write "succeeds" (the disk lied), but
  // the renamed generation 1 is chopped in half.
  ASSERT_TRUE(
      FaultInjector::Get().ArmFromSpec("checkpoint.truncate:error:1").ok());
  ASSERT_TRUE(writer
                  .OnCheckpoint(stored.state,
                                CheckpointSink::SnapshotReason::kPeriodic)
                  .ok());
  EXPECT_EQ(FaultInjector::Get().fired_count(), 1u);

  auto torn = ReadCheckpointFile(CheckpointFilePath(dir, 1));
  ASSERT_FALSE(torn.ok());
  // Depending on where the cut lands, the reader reports either a section
  // framing overrun or a CRC mismatch — both name the torn section.
  EXPECT_TRUE(torn.status().message().find("torn or corrupt") !=
                  std::string::npos ||
              torn.status().message().find("truncated") != std::string::npos ||
              torn.status().message().find("overruns") != std::string::npos)
      << torn.status().ToString();

  // LoadLatestCheckpoint degrades to the previous durable generation.
  auto recovered = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->state.generation, 0u);
}

TEST(CheckpointTest, ValidateStoredCheckpointPinsDatasetAndOptions) {
  const GridDataset grid = BumpyGrid(8, 8);
  const RepartitionOptions options = BaseOptions();
  StoredCheckpoint stored = MakeStored(grid);

  EXPECT_TRUE(ValidateStoredCheckpoint(stored, grid, options).ok());

  StoredCheckpoint wrong_grid = stored;
  wrong_grid.grid_fingerprint ^= 1;
  const Status grid_status = ValidateStoredCheckpoint(wrong_grid, grid, options);
  ASSERT_FALSE(grid_status.ok());
  EXPECT_EQ(grid_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(grid_status.message().find("different dataset"), std::string::npos);

  StoredCheckpoint wrong_options = stored;
  wrong_options.options_fingerprint ^= 1;
  const Status opt_status =
      ValidateStoredCheckpoint(wrong_options, grid, options);
  ASSERT_FALSE(opt_status.ok());
  EXPECT_EQ(opt_status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(opt_status.message().find("options"), std::string::npos);

  // And the structural check: a snapshot from another grid shape.
  EXPECT_FALSE(stored.state.ValidateFor(BumpyGrid(6, 6)).ok());
}

TEST(CheckpointTest, CheckpointEveryWithoutASinkIsRejected) {
  RepartitionOptions options = BaseOptions();
  options.checkpoint_every = 4;
  auto result = Repartitioner(options).Run(BumpyGrid(8, 8));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, ResumeRejectsASnapshotFromAnotherGrid) {
  std::vector<RepartitionCheckpoint> snapshots =
      SnapshotEveryIteration(BumpyGrid(8, 8), nullptr);
  ASSERT_GE(snapshots.size(), 1u);
  RepartitionOptions options = BaseOptions();
  options.resume_from = &snapshots.front();
  auto result = Repartitioner(options).Run(BumpyGrid(12, 12));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, ResumeFromAnySnapshotMatchesTheUninterruptedRun) {
  const GridDataset grid = BumpyGrid(12, 12);
  RepartitionResult reference;
  std::vector<RepartitionCheckpoint> snapshots =
      SnapshotEveryIteration(grid, &reference);
  ASSERT_EQ(snapshots.size(), reference.iterations);
  ASSERT_GE(snapshots.size(), 10u);

  // First, middle and last committed snapshots, single-threaded scalar.
  for (size_t index : {size_t(0), snapshots.size() / 2, snapshots.size() - 1}) {
    SCOPED_TRACE(index);
    RepartitionOptions options = BaseOptions();
    options.resume_from = &snapshots[index];
    auto resumed = Repartitioner(options).Run(grid);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_TRUE(resumed->stats.resumed);
    EXPECT_EQ(resumed->stats.resumed_iterations, snapshots[index].iterations);
    ExpectBitIdentical(reference, *resumed);
  }
}

TEST(CheckpointTest, ResumeIsBitIdenticalAcrossThreadsAndSimdTiers) {
  const GridDataset grid = BumpyGrid(12, 12);
  RepartitionResult reference;
  std::vector<RepartitionCheckpoint> snapshots =
      SnapshotEveryIteration(grid, &reference);
  ASSERT_GE(snapshots.size(), 6u);
  const RepartitionCheckpoint& mid = snapshots[snapshots.size() / 2];

  using kernels::ScopedSimdLevel;
  using kernels::SimdLevel;
  for (const SimdLevel level : {SimdLevel::kScalar, kernels::ActiveSimdLevel()}) {
    ScopedSimdLevel forced(level);
    for (const size_t threads : {size_t(1), size_t(2), size_t(8)}) {
      SCOPED_TRACE(std::string(kernels::SimdLevelName(level)) + "/threads=" +
                   std::to_string(threads));
      RepartitionOptions options = BaseOptions();
      options.num_threads = threads;
      options.resume_from = &mid;
      auto resumed = Repartitioner(options).Run(grid);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      ExpectBitIdentical(reference, *resumed);
    }
  }
}

/// Cancels the run's token after `after` iteration callbacks, from inside
/// the loop — a deterministic stand-in for a wall-clock deadline.
class CancelAfterSink : public obs::IntrospectionSink {
 public:
  CancelAfterSink(CancellationToken token, size_t after)
      : token_(std::move(token)), after_(after) {}

  void OnIteration(size_t, double, double, size_t, bool) override {
    if (++calls_ >= after_) token_.RequestCancel();
  }

 private:
  CancellationToken token_;
  size_t after_;
  size_t calls_ = 0;
};

TEST(CheckpointTest, InterruptSnapshotResumesToTheIdenticalResult) {
  const GridDataset grid = BumpyGrid(12, 12);
  RepartitionResult reference;
  ASSERT_FALSE(SnapshotEveryIteration(grid, &reference).empty());

  CancellationToken token;
  RunContext ctx;
  ctx.set_token(token);
  ctx.set_best_effort(true);
  CancelAfterSink canceller(token, 5);
  RecordingSink sink;
  RepartitionOptions options = BaseOptions();
  options.introspection = &canceller;
  options.checkpoint = &sink;  // checkpoint_every = 0: interrupt-time only
  auto degraded = Repartitioner(options).Run(grid, &ctx);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_TRUE(degraded->stats.interrupted);
  ASSERT_LT(degraded->iterations, reference.iterations);

  ASSERT_EQ(sink.snapshots.size(), 1u);
  EXPECT_EQ(sink.reasons[0], CheckpointSink::SnapshotReason::kInterrupt);
  const RepartitionCheckpoint& snapshot = sink.snapshots[0];
  EXPECT_EQ(snapshot.iterations, degraded->iterations);
  EXPECT_TRUE(snapshot.ValidateFor(grid).ok());

  RepartitionOptions resume_options = BaseOptions();
  resume_options.resume_from = &snapshot;
  auto resumed = Repartitioner(resume_options).Run(grid);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->stats.resumed);
  ExpectBitIdentical(reference, *resumed);
}

/// SIGKILLs the process after `after` iteration callbacks — no unwinding,
/// no flushing: the hardest crash the durable layer must survive.
class KillAfterSink : public obs::IntrospectionSink {
 public:
  explicit KillAfterSink(size_t after) : after_(after) {}

  void OnIteration(size_t, double, double, size_t, bool) override {
    if (++calls_ >= after_) ::kill(::getpid(), SIGKILL);
  }

 private:
  size_t after_;
  size_t calls_ = 0;
};

TEST(CheckpointKillResumeTest, SigkillMidRunThenResumeIsBitIdentical) {
  const std::string dir = FreshDir("ckpt_kill");
  const GridDataset grid = BumpyGrid(12, 12);
  const RepartitionOptions options = BaseOptions();
  auto reference = Repartitioner(options).Run(grid);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GE(reference->iterations, 10u);

  const pid_t pid = fork();
  if (pid == 0) {
    // Child: durable checkpoints every 2 iterations, then die mid-run with
    // no chance to clean up. Exit codes flag the impossible paths.
    CheckpointWriter::Options wopt;
    wopt.directory = dir;
    wopt.grid_fingerprint = GridFingerprint(grid);
    wopt.options_fingerprint = OptionsFingerprint(options);
    CheckpointWriter writer(wopt);
    if (!writer.Init().ok()) _exit(3);
    KillAfterSink killer(8);
    RepartitionOptions child_options = options;
    child_options.checkpoint = &writer;
    child_options.checkpoint_every = 2;
    child_options.introspection = &killer;
    (void)Repartitioner(child_options).Run(grid);
    _exit(2);  // the SIGKILL must land before the run completes
  }
  ASSERT_GT(pid, 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

  // The newest durable generation survived the kill, validates against the
  // same (grid, options), and resuming from it reproduces the reference
  // bit for bit.
  auto recovered = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(ValidateStoredCheckpoint(*recovered, grid, options).ok());
  EXPECT_GT(recovered->state.iterations, 0u);
  EXPECT_LT(recovered->state.iterations, reference->iterations);

  RepartitionOptions resume_options = options;
  resume_options.resume_from = &recovered->state;
  auto resumed = Repartitioner(resume_options).Run(grid);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->stats.resumed);
  ExpectBitIdentical(*reference, *resumed);
}

}  // namespace
}  // namespace srp
