#include "core/reconstruct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/feature_allocator.h"
#include "core/repartitioner.h"
#include "data/datasets.h"

namespace srp {
namespace {

TEST(ReconstructTest, PaperExample7SumDividesEvenly) {
  // A 2-cell group with summed value 54 reconstructs to 27 per cell.
  GridDataset g(1, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 30.0);
  g.Set(0, 1, 0, 24.0);
  Partition p;
  p.rows = 1;
  p.cols = 2;
  p.groups = {CellGroup{0, 0, 0, 1}};
  p.cell_to_group = {0, 0};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  ASSERT_DOUBLE_EQ(p.features[0][0], 54.0);
  const auto cells = ReconstructCells(p, {54.0}, AggType::kSum);
  EXPECT_DOUBLE_EQ(cells[0], 27.0);
  EXPECT_DOUBLE_EQ(cells[1], 27.0);
}

TEST(ReconstructTest, AverageCopiesGroupValue) {
  Partition p;
  p.rows = 1;
  p.cols = 3;
  p.groups = {CellGroup{0, 0, 0, 2}};
  p.cell_to_group = {0, 0, 0};
  p.group_null = {0};
  p.group_valid_count = {3};
  const auto cells = ReconstructCells(p, {42.0}, AggType::kAverage);
  for (double v : cells) EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(ReconstructTest, NullGroupsYieldZero) {
  Partition p;
  p.rows = 1;
  p.cols = 2;
  p.groups = {CellGroup{0, 0, 0, 0}, CellGroup{0, 0, 1, 1}};
  p.cell_to_group = {0, 1};
  p.group_null = {0, 1};  // second group null
  p.group_null = {0, 1};
  p.group_valid_count = {1, 0};
  const auto cells = ReconstructCells(p, {5.0, 99.0}, AggType::kAverage);
  EXPECT_DOUBLE_EQ(cells[0], 5.0);
  EXPECT_DOUBLE_EQ(cells[1], 0.0);
}

TEST(ReconstructTest, GridRoundTripAtZeroLossIsExact) {
  // Each cell its own group: reconstruction must reproduce the grid.
  GridDataset g(2, 2,
                {{"count", AggType::kSum, true},
                 {"price", AggType::kAverage, false}});
  g.SetFeatureVector(0, 0, {1, 10.0});
  g.SetFeatureVector(0, 1, {2, 20.0});
  g.SetFeatureVector(1, 0, {3, 30.0});
  g.SetFeatureVector(1, 1, {4, 40.0});
  const Partition p = TrivialPartition(g);
  const GridDataset back = ReconstructGrid(g, p);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      for (size_t k = 0; k < 2; ++k) {
        EXPECT_DOUBLE_EQ(back.At(r, c, k), g.At(r, c, k));
      }
    }
  }
}

TEST(ReconstructTest, GridReconstructionPreservesGroupTotalsForSumAgg) {
  GridDataset g(2, 2, {{"count", AggType::kSum, false}});
  g.Set(0, 0, 0, 1.0);
  g.Set(0, 1, 0, 3.0);
  g.Set(1, 0, 0, 5.0);
  g.Set(1, 1, 0, 7.0);
  Partition p;
  p.rows = 2;
  p.cols = 2;
  p.groups = {CellGroup{0, 1, 0, 1}};
  p.cell_to_group = {0, 0, 0, 0};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  const GridDataset back = ReconstructGrid(g, p);
  double total = 0.0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) total += back.At(r, c, 0);
  }
  EXPECT_DOUBLE_EQ(total, 16.0);  // group sum preserved
}

TEST(ReconstructTest, NullCellsStayNullInReconstructedGrid) {
  GridDataset g(1, 2, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 9.0);
  Partition p;
  p.rows = 1;
  p.cols = 2;
  p.groups = {CellGroup{0, 0, 0, 0}, CellGroup{0, 0, 1, 1}};
  p.cell_to_group = {0, 1};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  const GridDataset back = ReconstructGrid(g, p);
  EXPECT_FALSE(back.IsNull(0, 0));
  EXPECT_TRUE(back.IsNull(0, 1));
}


TEST(ReconstructTest, IflEqualsMapeOfReconstructedGrid) {
  // Consistency invariant tying Eq. 3 to the cell-level reconstruction:
  // InformationLoss(grid, partition) must equal the MAPE between the grid
  // and ReconstructGrid(grid, partition) over valid cells/attributes.
  DatasetOptions options;
  options.rows = 16;
  options.cols = 16;
  options.seed = 77;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripMulti, options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.1;
  ropt.min_variation_step = 2e-3;
  auto result = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(result.ok());
  const GridDataset back = ReconstructGrid(*grid, result->partition);
  double total = 0.0;
  size_t terms = 0;
  for (size_t r = 0; r < grid->rows(); ++r) {
    for (size_t c = 0; c < grid->cols(); ++c) {
      if (grid->IsNull(r, c)) continue;
      for (size_t k = 0; k < grid->num_attributes(); ++k) {
        const double y = grid->At(r, c, k);
        if (y == 0.0) continue;
        total += std::fabs(y - back.At(r, c, k)) / std::fabs(y);
        ++terms;
      }
    }
  }
  EXPECT_NEAR(result->information_loss, total / static_cast<double>(terms),
              1e-12);
}

}  // namespace
}  // namespace srp
