#include "core/adjacency.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "core/variation.h"
#include "data/datasets.h"
#include "grid/normalize.h"

namespace srp {
namespace {

TEST(GridCellAdjacencyTest, CornerEdgeInteriorDegrees) {
  const auto adj = GridCellAdjacency(3, 3);
  EXPECT_EQ(adj[0].size(), 2u);  // corner
  EXPECT_EQ(adj[1].size(), 3u);  // edge
  EXPECT_EQ(adj[4].size(), 4u);  // interior
  // Interior cell 4 connects to 1, 3, 5, 7.
  EXPECT_EQ(adj[4], (std::vector<int32_t>{1, 3, 5, 7}));
}

TEST(GridCellAdjacencyTest, Symmetry) {
  const auto adj = GridCellAdjacency(4, 5);
  for (size_t i = 0; i < adj.size(); ++i) {
    for (int32_t j : adj[i]) {
      const auto& back = adj[static_cast<size_t>(j)];
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<int32_t>(i)) != back.end());
    }
  }
}

/// A partition shaped like the paper's Fig. 3 sketch: verify boundary-walk
/// neighbor discovery on hand-placed rectangles.
TEST(AdjacencyListTest, HandCraftedRectangles) {
  // 3x4 grid split into:
  //   group 0: rows 0-0, cols 0-1     group 1: rows 0-0, cols 2-3
  //   group 2: rows 1-2, cols 0-1     group 3: rows 1-2, cols 2-3
  Partition p;
  p.rows = 3;
  p.cols = 4;
  p.groups = {
      CellGroup{0, 0, 0, 1},
      CellGroup{0, 0, 2, 3},
      CellGroup{1, 2, 0, 1},
      CellGroup{1, 2, 2, 3},
  };
  p.cell_to_group = {0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  const auto neighbors = BuildAdjacencyList(p);
  EXPECT_EQ(neighbors[0], (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(neighbors[1], (std::vector<int32_t>{0, 3}));
  EXPECT_EQ(neighbors[2], (std::vector<int32_t>{0, 3}));
  EXPECT_EQ(neighbors[3], (std::vector<int32_t>{1, 2}));
}

TEST(AdjacencyListTest, SingleGroupHasNoNeighbors) {
  Partition p;
  p.rows = 2;
  p.cols = 2;
  p.groups = {CellGroup{0, 1, 0, 1}};
  p.cell_to_group = {0, 0, 0, 0};
  const auto neighbors = BuildAdjacencyList(p);
  EXPECT_TRUE(neighbors[0].empty());
}

TEST(AdjacencyListTest, NoSelfLoopsAndNoDuplicates) {
  DatasetOptions options;
  options.rows = 20;
  options.cols = 20;
  options.seed = 3;
  auto grid = GenerateDataset(DatasetKind::kVehiclesUni, options);
  ASSERT_TRUE(grid.ok());
  const GridDataset norm = AttributeNormalized(*grid);
  const PairVariations pv = ComputePairVariations(norm);
  const Partition p = CellGroupExtractor(pv).Extract(0.1);
  const auto neighbors = BuildAdjacencyList(p);
  for (size_t g = 0; g < neighbors.size(); ++g) {
    EXPECT_TRUE(std::find(neighbors[g].begin(), neighbors[g].end(),
                          static_cast<int32_t>(g)) == neighbors[g].end());
    auto sorted = neighbors[g];
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

TEST(AdjacencyListTest, SymmetryOnExtractedPartition) {
  DatasetOptions options;
  options.rows = 24;
  options.cols = 24;
  options.seed = 8;
  auto grid = GenerateDataset(DatasetKind::kEarningsMulti, options);
  ASSERT_TRUE(grid.ok());
  const GridDataset norm = AttributeNormalized(*grid);
  const PairVariations pv = ComputePairVariations(norm);
  const Partition p = CellGroupExtractor(pv).Extract(0.05);
  const auto neighbors = BuildAdjacencyList(p);
  for (size_t g = 0; g < neighbors.size(); ++g) {
    for (int32_t n : neighbors[g]) {
      const auto& back = neighbors[static_cast<size_t>(n)];
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<int32_t>(g)) != back.end())
          << "asymmetric edge " << g << " -> " << n;
    }
  }
}

TEST(AdjacencyListTest, NeighborsAreGeometricallyAdjacent) {
  Partition p;
  p.rows = 2;
  p.cols = 3;
  p.groups = {CellGroup{0, 1, 0, 0}, CellGroup{0, 1, 1, 1},
              CellGroup{0, 1, 2, 2}};
  p.cell_to_group = {0, 1, 2, 0, 1, 2};
  const auto neighbors = BuildAdjacencyList(p);
  // Group 0 and group 2 are separated by group 1.
  EXPECT_EQ(neighbors[0], (std::vector<int32_t>{1}));
  EXPECT_EQ(neighbors[2], (std::vector<int32_t>{1}));
  EXPECT_EQ(neighbors[1], (std::vector<int32_t>{0, 2}));
}

}  // namespace
}  // namespace srp
