#include "core/extractor.h"

#include <set>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "grid/normalize.h"

namespace srp {
namespace {

GridDataset UniformGrid(size_t rows, size_t cols, double value = 1.0) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) g.Set(r, c, 0, value);
  }
  return g;
}

void ExpectValidPartition(const GridDataset& g, const Partition& p) {
  // Every cell covered exactly once by a rectangle — the framework's core
  // structural invariant.
  ASSERT_TRUE(p.Validate(g).ok()) << p.Validate(g).ToString();
}

TEST(ExtractorTest, UniformGridCollapsesToOneGroup) {
  const GridDataset g = UniformGrid(4, 4);
  const PairVariations pv = ComputePairVariations(g);
  const CellGroupExtractor extractor(pv);
  const Partition p = extractor.Extract(0.0);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.num_groups(), 1u);
  EXPECT_EQ(p.groups[0], (CellGroup{0, 3, 0, 3}));
}

TEST(ExtractorTest, ZeroThresholdKeepsDistinctCellsApart) {
  GridDataset g(2, 2, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 1.0);
  g.Set(0, 1, 0, 2.0);
  g.Set(1, 0, 0, 3.0);
  g.Set(1, 1, 0, 4.0);
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(0.0);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.num_groups(), 4u);
}

TEST(ExtractorTest, HorizontalStripWinsWhenRowsSimilar) {
  // Row 0 is constant, row 1 very different: expect 1x3 strips.
  GridDataset g(2, 3, {{"a", AggType::kAverage, false}});
  for (size_t c = 0; c < 3; ++c) {
    g.Set(0, c, 0, 1.0);
    g.Set(1, c, 0, 100.0 + 50.0 * static_cast<double>(c));
  }
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(0.0);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.GroupOf(0, 0), p.GroupOf(0, 2));
  EXPECT_NE(p.GroupOf(0, 0), p.GroupOf(1, 0));
  EXPECT_NE(p.GroupOf(1, 0), p.GroupOf(1, 1));
}

TEST(ExtractorTest, VerticalStripWinsWhenColumnsSimilar) {
  GridDataset g(3, 2, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < 3; ++r) {
    g.Set(r, 0, 0, 5.0);
    g.Set(r, 1, 0, 100.0 + 50.0 * static_cast<double>(r));
  }
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(0.0);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.GroupOf(0, 0), p.GroupOf(2, 0));
  EXPECT_NE(p.GroupOf(0, 0), p.GroupOf(0, 1));
}

TEST(ExtractorTest, RectangleBeatsStrips) {
  // Paper Example 3's shape: a 2x3 block of similar values grows as a
  // rectangle (6 cells) rather than a 3-cell strip.
  GridDataset g(3, 4, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) g.Set(r, c, 0, 900.0 + 17.0 * (r * 4 + c));
  }
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) g.Set(r, c, 0, 23.0);
  }
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(0.0);
  ExpectValidPartition(g, p);
  const int32_t block = p.GroupOf(0, 0);
  EXPECT_EQ(p.groups[static_cast<size_t>(block)], (CellGroup{0, 1, 0, 2}));
  EXPECT_EQ(p.groups[static_cast<size_t>(block)].NumCells(), 6u);
}

TEST(ExtractorTest, AllAdjacentPairsInsideGroupRespectThreshold) {
  // Rectangles are only valid when every internal adjacent pair is within
  // the bound: a diagonal gradient with threshold below the diagonal step
  // must not produce any 2x2 group containing an over-threshold pair.
  GridDataset g(4, 4, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      g.Set(r, c, 0, static_cast<double>(r) * 10.0 + static_cast<double>(c));
    }
  }
  const PairVariations pv = ComputePairVariations(g);
  const double threshold = 1.5;  // allows column steps (1), not row steps (10)
  const Partition p = CellGroupExtractor(pv).Extract(threshold);
  ExpectValidPartition(g, p);
  for (const CellGroup& cg : p.groups) {
    for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
      for (size_t c = cg.c_beg; c < cg.c_end; ++c) {
        EXPECT_LE(pv.Right(r, c), threshold);
      }
    }
    for (size_t r = cg.r_beg; r < cg.r_end; ++r) {
      for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
        EXPECT_LE(pv.Down(r, c), threshold);
      }
    }
  }
}

TEST(ExtractorTest, NullCellsGroupTogetherButNotWithValid) {
  GridDataset g(2, 3, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 1.0);
  g.Set(1, 0, 0, 1.0);
  // Columns 1 and 2 stay null.
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(10.0);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.GroupOf(0, 1), p.GroupOf(1, 2));  // nulls merged
  EXPECT_NE(p.GroupOf(0, 0), p.GroupOf(0, 1));  // never across nullness
  EXPECT_EQ(p.GroupOf(0, 0), p.GroupOf(1, 0));
}

TEST(ExtractorTest, SingletonWhenNoNeighborQualifies) {
  GridDataset g(1, 3, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 0.0);
  g.Set(0, 1, 0, 100.0);
  g.Set(0, 2, 0, 200.0);
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(1.0);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.num_groups(), 3u);
}

TEST(ExtractorTest, LargeThresholdMergesEverythingValid) {
  GridDataset g(3, 3, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      g.Set(r, c, 0, static_cast<double>(r * 3 + c));
    }
  }
  const PairVariations pv = ComputePairVariations(g);
  const Partition p = CellGroupExtractor(pv).Extract(1e9);
  ExpectValidPartition(g, p);
  EXPECT_EQ(p.num_groups(), 1u);
}

/// Property sweep: on realistic synthetic grids, any threshold yields a
/// valid partition whose group count shrinks as the threshold grows.
class ExtractorProperty : public testing::TestWithParam<double> {};

TEST_P(ExtractorProperty, ValidPartitionOnSyntheticData) {
  DatasetOptions options;
  options.rows = 24;
  options.cols = 24;
  options.seed = 5;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, options);
  ASSERT_TRUE(grid.ok());
  const GridDataset norm = AttributeNormalized(*grid);
  const PairVariations pv = ComputePairVariations(norm);
  const Partition p = CellGroupExtractor(pv).Extract(GetParam());
  ASSERT_TRUE(p.Validate(*grid).ok());
  EXPECT_LE(p.num_groups(), grid->num_cells());
  EXPECT_GE(p.num_groups(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ExtractorProperty,
                         testing::Values(0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0));

TEST(ExtractorTest, GroupCountMonotoneInThreshold) {
  DatasetOptions options;
  options.rows = 20;
  options.cols = 20;
  options.seed = 9;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripUni, options);
  ASSERT_TRUE(grid.ok());
  const GridDataset norm = AttributeNormalized(*grid);
  const PairVariations pv = ComputePairVariations(norm);
  const CellGroupExtractor extractor(pv);
  // Greedy shape choices can fragment slightly differently between
  // thresholds, so allow a small slack on top of strict monotonicity.
  const size_t slack = grid->num_cells() / 50;
  size_t last = grid->num_cells() + 1;
  for (double t : {0.0, 0.02, 0.05, 0.1, 0.2, 0.5}) {
    const Partition p = extractor.Extract(t);
    EXPECT_LE(p.num_groups(), last + slack) << "threshold " << t;
    last = p.num_groups();
  }
}

}  // namespace
}  // namespace srp
