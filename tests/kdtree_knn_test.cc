#include <cmath>

#include <gtest/gtest.h>

#include "ml/kdtree.h"
#include "ml/knn.h"
#include "util/random.h"

namespace srp {
namespace {

Matrix RandomPoints(size_t n, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix points(n, dims);
  for (size_t i = 0; i < points.size(); ++i) {
    points.mutable_data()[i] = rng.Uniform(-5, 5);
  }
  return points;
}

TEST(KdTreeTest, SingleNearestNeighborExactMatch) {
  Matrix points{{0, 0}, {1, 1}, {5, 5}};
  KdTree tree(points, 2);
  const auto nn = tree.NearestNeighbors({0.9, 1.1}, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], 1u);
}

TEST(KdTreeTest, ReturnsFewerWhenTreeSmall) {
  Matrix points{{0, 0}, {1, 1}};
  KdTree tree(points);
  EXPECT_EQ(tree.NearestNeighbors({0, 0}, 10).size(), 2u);
  EXPECT_TRUE(tree.NearestNeighbors({0, 0}, 0).empty());
}

TEST(KdTreeTest, NearestFirstOrdering) {
  Matrix points{{0, 0}, {2, 0}, {4, 0}, {6, 0}};
  KdTree tree(points, 1);
  const auto nn = tree.NearestNeighbors({0.1, 0.0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], 0u);
  EXPECT_EQ(nn[1], 1u);
  EXPECT_EQ(nn[2], 2u);
}

/// Property sweep: the tree must agree with brute force for random point
/// sets across sizes, dimensions, leaf sizes and k.
class KdTreeProperty
    : public testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(KdTreeProperty, MatchesBruteForce) {
  const auto [n, dims, leaf, k] = GetParam();
  const Matrix points = RandomPoints(static_cast<size_t>(n),
                                     static_cast<size_t>(dims),
                                     static_cast<uint64_t>(n * 131 + dims));
  KdTree tree(points, static_cast<size_t>(leaf));
  Rng rng(99);
  for (int q = 0; q < 20; ++q) {
    std::vector<double> query(static_cast<size_t>(dims));
    for (auto& v : query) v = rng.Uniform(-6, 6);
    const auto fast = tree.NearestNeighbors(query, static_cast<size_t>(k));
    const auto slow =
        tree.NearestNeighborsBruteForce(query, static_cast<size_t>(k));
    ASSERT_EQ(fast.size(), slow.size());
    // Compare by distance (ties may reorder indices).
    for (size_t i = 0; i < fast.size(); ++i) {
      double df = 0.0;
      double ds = 0.0;
      for (size_t c = 0; c < static_cast<size_t>(dims); ++c) {
        df += std::pow(points(fast[i], c) - query[c], 2);
        ds += std::pow(points(slow[i], c) - query[c], 2);
      }
      EXPECT_NEAR(df, ds, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KdTreeProperty,
    testing::Values(std::make_tuple(10, 2, 1, 3),
                    std::make_tuple(100, 2, 18, 7),
                    std::make_tuple(100, 3, 4, 1),
                    std::make_tuple(500, 2, 18, 10),
                    std::make_tuple(200, 5, 18, 7),
                    std::make_tuple(50, 1, 2, 5)));

TEST(KnnClassifierTest, ClassifiesWellSeparatedClusters) {
  Rng rng(101);
  const size_t n = 200;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    const double cx = cls == 0 ? -3.0 : 3.0;
    x(i, 0) = cx + rng.Normal() * 0.3;
    x(i, 1) = cx + rng.Normal() * 0.3;
    labels[i] = cls;
  }
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(x, labels, 2).ok());
  const auto pred = knn.Predict(x);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(pred[i], labels[i]);
}

TEST(KnnClassifierTest, StandardizationMakesScalesComparable) {
  // Feature 1 has a huge scale but carries no signal; without
  // standardization it would dominate the distance.
  Rng rng(103);
  const size_t n = 300;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    x(i, 0) = (cls == 0 ? -1.0 : 1.0) + rng.Normal() * 0.2;
    x(i, 1) = rng.Normal() * 1e6;  // pure noise at huge scale
    labels[i] = cls;
  }
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(x, labels, 2).ok());
  const auto pred = knn.Predict(x);
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) hits += (pred[i] == labels[i]);
  EXPECT_GT(static_cast<double>(hits) / n, 0.9);
}

TEST(KnnClassifierTest, RejectsBadInput) {
  KnnClassifier knn;
  EXPECT_FALSE(knn.Fit(Matrix(0, 2), {}, 2).ok());
  EXPECT_FALSE(knn.Fit(Matrix(2, 2), {0, 3}, 2).ok());
  EXPECT_FALSE(knn.Fit(Matrix(2, 2), {0, 0}, 1).ok());
}

TEST(KnnClassifierTest, MultiClass) {
  Rng rng(107);
  const size_t n = 300;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 3);
    x(i, 0) = 4.0 * cls + rng.Normal() * 0.4;
    x(i, 1) = rng.Normal() * 0.4;
    labels[i] = cls;
  }
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(x, labels, 3).ok());
  const auto pred = knn.Predict(x);
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) hits += (pred[i] == labels[i]);
  EXPECT_GT(static_cast<double>(hits) / n, 0.97);
}

}  // namespace
}  // namespace srp
