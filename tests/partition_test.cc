#include "core/partition.h"

#include <gtest/gtest.h>

#include "core/feature_allocator.h"
#include "ml/dataset.h"

namespace srp {
namespace {

GridDataset UnitGrid() {
  GridDataset g(4, 4,
                {{"count", AggType::kSum, true},
                 {"level", AggType::kAverage, false}},
                GeoExtent{0.0, 4.0, 0.0, 4.0});
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      g.SetFeatureVector(r, c, {8.0, 10.0 * static_cast<double>(r)});
    }
  }
  return g;
}

Partition QuadPartition() {
  // Four 2x2 quadrants.
  Partition p;
  p.rows = 4;
  p.cols = 4;
  p.groups = {CellGroup{0, 1, 0, 1}, CellGroup{0, 1, 2, 3},
              CellGroup{2, 3, 0, 1}, CellGroup{2, 3, 2, 3}};
  p.cell_to_group = {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  return p;
}

TEST(PartitionTest, GroupCentroidIsRectangleCenter) {
  const GridDataset g = UnitGrid();
  const Partition p = QuadPartition();
  // Group 0 covers rows 0-1, cols 0-1 of a grid with unit cells over
  // [0,4]x[0,4]: its center is (1, 1).
  const Centroid c0 = p.GroupCentroid(g, 0);
  EXPECT_DOUBLE_EQ(c0.lat, 1.0);
  EXPECT_DOUBLE_EQ(c0.lon, 1.0);
  const Centroid c3 = p.GroupCentroid(g, 3);
  EXPECT_DOUBLE_EQ(c3.lat, 3.0);
  EXPECT_DOUBLE_EQ(c3.lon, 3.0);
}

TEST(PartitionTest, GroupVerticesAreRectangleCorners) {
  const GridDataset g = UnitGrid();
  const Partition p = QuadPartition();
  const auto vertices = p.GroupVertices(g, 1);  // rows 0-1, cols 2-3
  ASSERT_EQ(vertices.size(), 4u);
  EXPECT_DOUBLE_EQ(vertices[0].lat, 0.0);
  EXPECT_DOUBLE_EQ(vertices[0].lon, 2.0);
  EXPECT_DOUBLE_EQ(vertices[3].lat, 2.0);
  EXPECT_DOUBLE_EQ(vertices[3].lon, 4.0);
}

TEST(PartitionTest, ValidateCatchesInconsistentMap) {
  const GridDataset g = UnitGrid();
  Partition p = QuadPartition();
  p.cell_to_group[0] = 3;  // cell (0,0) outside group 3's rectangle
  EXPECT_FALSE(p.Validate(g).ok());
}

TEST(PartitionTest, ValidateCatchesOutOfRangeGroupId) {
  const GridDataset g = UnitGrid();
  Partition p = QuadPartition();
  p.cell_to_group[5] = 42;
  EXPECT_FALSE(p.Validate(g).ok());
}

TEST(PartitionTest, ValidateCatchesFeatureArityMismatch) {
  const GridDataset g = UnitGrid();
  Partition p = QuadPartition();
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  p.features[0].pop_back();
  EXPECT_FALSE(p.Validate(g).ok());
}

TEST(PartitionTest, SumDivisorPrefersValidCount) {
  Partition p;
  p.groups = {CellGroup{0, 1, 0, 1}};  // 4 cells
  p.group_valid_count = {3};
  EXPECT_DOUBLE_EQ(p.SumDivisor(0), 3.0);
  p.group_valid_count.clear();
  EXPECT_DOUBLE_EQ(p.SumDivisor(0), 4.0);
}

TEST(PrepareFromPartitionTest, RawSumsWhenSpreadingDisabled) {
  const GridDataset g = UnitGrid();
  Partition p = QuadPartition();
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  // Each quadrant sums count 8 over 4 cells -> 32.
  auto spread = PrepareFromPartition(g, p, "level",
                                     /*spread_sum_aggregates=*/true);
  auto raw = PrepareFromPartition(g, p, "level",
                                  /*spread_sum_aggregates=*/false);
  ASSERT_TRUE(spread.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_DOUBLE_EQ(spread->features(0, 0), 8.0);   // per-cell scale
  EXPECT_DOUBLE_EQ(raw->features(0, 0), 32.0);     // group total
  // Average-aggregated target identical in both modes.
  EXPECT_DOUBLE_EQ(spread->target[0], raw->target[0]);
}

}  // namespace
}  // namespace srp
