#include <map>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "baselines/clustering_reduction.h"
#include "baselines/regionalization.h"
#include "baselines/sampling.h"
#include "data/datasets.h"

namespace srp {
namespace {

GridDataset TestGrid(DatasetKind kind = DatasetKind::kHomeSalesMulti,
                     size_t side = 20, uint64_t seed = 15) {
  DatasetOptions options;
  options.rows = side;
  options.cols = side;
  options.seed = seed;
  auto grid = GenerateDataset(kind, options);
  EXPECT_TRUE(grid.ok());
  return std::move(grid).value();
}

TEST(SamplingTest, ReturnsExactlyTargetSamples) {
  const GridDataset grid = TestGrid();
  SpatialSamplingOptions options;
  options.target_samples = 50;
  auto reduced = SpatialSampling(grid, options);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->num_units(), 50u);
  EXPECT_EQ(reduced->coords.size(), 50u);
  EXPECT_EQ(reduced->neighbors.size(), 50u);
}

TEST(SamplingTest, EveryValidCellMapsToASample) {
  const GridDataset grid = TestGrid();
  SpatialSamplingOptions options;
  options.target_samples = 30;
  auto reduced = SpatialSampling(grid, options);
  ASSERT_TRUE(reduced.ok());
  for (size_t cell = 0; cell < grid.num_cells(); ++cell) {
    if (grid.IsNullIndex(cell)) {
      EXPECT_EQ(reduced->cell_to_unit[cell], -1);
    } else {
      ASSERT_GE(reduced->cell_to_unit[cell], 0);
      ASSERT_LT(reduced->cell_to_unit[cell], 30);
    }
  }
}

TEST(SamplingTest, SamplesKeepTheirOwnFeatureVectors) {
  const GridDataset grid = TestGrid(DatasetKind::kVehiclesUni);
  SpatialSamplingOptions options;
  options.target_samples = 25;
  auto reduced = SpatialSampling(grid, options);
  ASSERT_TRUE(reduced.ok());
  // Every sample's attribute value must appear verbatim somewhere in the
  // grid (samples are cells, not aggregates).
  std::set<double> grid_values;
  for (size_t cell = 0; cell < grid.num_cells(); ++cell) {
    if (!grid.IsNullIndex(cell)) grid_values.insert(grid.AtIndex(cell, 0));
  }
  for (size_t s = 0; s < 25; ++s) {
    EXPECT_TRUE(grid_values.count(reduced->attributes(s, 0)) > 0);
  }
}

TEST(SamplingTest, DeterministicUnderSeed) {
  const GridDataset grid = TestGrid();
  SpatialSamplingOptions options;
  options.target_samples = 40;
  auto a = SpatialSampling(grid, options);
  auto b = SpatialSampling(grid, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cell_to_unit, b->cell_to_unit);
}

TEST(SamplingTest, RejectsBadTarget) {
  const GridDataset grid = TestGrid();
  SpatialSamplingOptions options;
  options.target_samples = 0;
  EXPECT_FALSE(SpatialSampling(grid, options).ok());
  options.target_samples = grid.num_cells() + 1;
  EXPECT_FALSE(SpatialSampling(grid, options).ok());
}

/// Flood-fill contiguity check over the cell -> unit map.
void ExpectContiguousUnits(const GridDataset& grid,
                           const std::vector<int32_t>& cell_to_unit) {
  std::map<int32_t, std::vector<size_t>> members;
  for (size_t cell = 0; cell < cell_to_unit.size(); ++cell) {
    if (cell_to_unit[cell] >= 0) members[cell_to_unit[cell]].push_back(cell);
  }
  const size_t cols = grid.cols();
  for (const auto& [unit, cells] : members) {
    std::set<size_t> cluster(cells.begin(), cells.end());
    std::set<size_t> seen{cells.front()};
    std::queue<size_t> frontier;
    frontier.push(cells.front());
    while (!frontier.empty()) {
      const size_t cur = frontier.front();
      frontier.pop();
      const size_t r = cur / cols;
      const size_t c = cur % cols;
      auto visit = [&](size_t cell) {
        if (cluster.count(cell) != 0 && seen.count(cell) == 0) {
          seen.insert(cell);
          frontier.push(cell);
        }
      };
      if (r > 0) visit(cur - cols);
      if (r + 1 < grid.rows()) visit(cur + cols);
      if (c > 0) visit(cur - 1);
      if (c + 1 < cols) visit(cur + 1);
    }
    EXPECT_EQ(seen.size(), cells.size()) << "unit " << unit;
  }
}

TEST(RegionalizationTest, RegionsAreContiguous) {
  const GridDataset grid = TestGrid();
  RegionalizationOptions options;
  options.target_regions = 60;
  auto reduced = Regionalize(grid, options);
  ASSERT_TRUE(reduced.ok());
  ExpectContiguousUnits(grid, reduced->cell_to_unit);
}

TEST(RegionalizationTest, EveryValidCellAssigned) {
  const GridDataset grid = TestGrid(DatasetKind::kEarningsMulti);
  RegionalizationOptions options;
  options.target_regions = 40;
  auto reduced = Regionalize(grid, options);
  ASSERT_TRUE(reduced.ok());
  for (size_t cell = 0; cell < grid.num_cells(); ++cell) {
    EXPECT_EQ(reduced->cell_to_unit[cell] >= 0, !grid.IsNullIndex(cell));
  }
}

TEST(RegionalizationTest, UnitCountNearTarget) {
  const GridDataset grid = TestGrid();
  RegionalizationOptions options;
  options.target_regions = 80;
  auto reduced = Regionalize(grid, options);
  ASSERT_TRUE(reduced.ok());
  // Exact target plus possibly a few seed-free islands.
  EXPECT_GE(reduced->num_units(), 80u);
  EXPECT_LE(reduced->num_units(), 80u + 20u);
}

TEST(RegionalizationTest, AdjacencyIsSymmetric) {
  const GridDataset grid = TestGrid(DatasetKind::kTaxiTripUni);
  RegionalizationOptions options;
  options.target_regions = 30;
  auto reduced = Regionalize(grid, options);
  ASSERT_TRUE(reduced.ok());
  for (size_t u = 0; u < reduced->num_units(); ++u) {
    for (int32_t v : reduced->neighbors[u]) {
      const auto& back = reduced->neighbors[static_cast<size_t>(v)];
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<int32_t>(u)) != back.end());
    }
  }
}

TEST(ClusteringReductionTest, ContiguousAndCountedClusters) {
  const GridDataset grid = TestGrid();
  ClusteringReductionOptions options;
  options.target_clusters = 70;
  auto reduced = ClusteringReduction(grid, options);
  ASSERT_TRUE(reduced.ok());
  EXPECT_GE(reduced->num_units(), 70u);
  ExpectContiguousUnits(grid, reduced->cell_to_unit);
}

TEST(ClusteringReductionTest, AggregatesAtPerCellScale) {
  // Each cluster's attribute is the mean over its member cells (summed
  // quantities spread back over cells, per the library-wide convention).
  const GridDataset grid = TestGrid(DatasetKind::kVehiclesUni);
  ClusteringReductionOptions options;
  options.target_clusters = 50;
  auto reduced = ClusteringReduction(grid, options);
  ASSERT_TRUE(reduced.ok());
  std::vector<double> sums(reduced->num_units(), 0.0);
  std::vector<size_t> counts(reduced->num_units(), 0);
  for (size_t cell = 0; cell < grid.num_cells(); ++cell) {
    const int32_t unit = reduced->cell_to_unit[cell];
    if (unit >= 0) {
      sums[static_cast<size_t>(unit)] += grid.AtIndex(cell, 0);
      ++counts[static_cast<size_t>(unit)];
    }
  }
  for (size_t u = 0; u < reduced->num_units(); ++u) {
    EXPECT_NEAR(reduced->attributes(u, 0),
                sums[u] / static_cast<double>(counts[u]), 1e-9);
  }
}

TEST(ClusteringReductionTest, RejectsBadTarget) {
  const GridDataset grid = TestGrid();
  ClusteringReductionOptions options;
  options.target_clusters = 0;
  EXPECT_FALSE(ClusteringReduction(grid, options).ok());
}

TEST(ReducedToMlDatasetTest, SplitsTargetColumn) {
  const GridDataset grid = TestGrid();
  SpatialSamplingOptions options;
  options.target_samples = 30;
  auto reduced = SpatialSampling(grid, options);
  ASSERT_TRUE(reduced.ok());
  auto ml = ReducedToMlDataset(grid, *reduced, "price");
  ASSERT_TRUE(ml.ok());
  EXPECT_EQ(ml->num_rows(), 30u);
  EXPECT_EQ(ml->features.cols(), grid.num_attributes() - 1);
  EXPECT_EQ(ml->target_name, "price");
  EXPECT_FALSE(ReducedToMlDataset(grid, *reduced, "bogus").ok());
}

}  // namespace
}  // namespace srp
