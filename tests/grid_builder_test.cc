#include "grid/grid_builder.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

GeoExtent UnitExtent() { return GeoExtent{0.0, 1.0, 0.0, 1.0}; }

std::vector<GridAttributeDef> CountSumAvgDefs() {
  using Source = GridAttributeDef::Source;
  return {
      {"count", Source::kCount, -1, AggType::kSum, true},
      {"total", Source::kSum, 0, AggType::kSum, false},
      {"mean", Source::kAverage, 0, AggType::kAverage, false},
  };
}

TEST(GridBuilderTest, AggregatesRecordsIntoCells) {
  // Two records in cell (0,0), one in (1,1) of a 2x2 grid.
  std::vector<PointRecord> records = {
      {0.1, 0.1, {10.0}},
      {0.2, 0.2, {30.0}},
      {0.8, 0.9, {5.0}},
  };
  auto grid = BuildGridFromPoints(records, 2, 2, UnitExtent(),
                                  CountSumAvgDefs());
  ASSERT_TRUE(grid.ok());
  EXPECT_DOUBLE_EQ(grid->At(0, 0, 0), 2.0);   // count
  EXPECT_DOUBLE_EQ(grid->At(0, 0, 1), 40.0);  // sum
  EXPECT_DOUBLE_EQ(grid->At(0, 0, 2), 20.0);  // mean
  EXPECT_DOUBLE_EQ(grid->At(1, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(grid->At(1, 1, 1), 5.0);
}

TEST(GridBuilderTest, EmptyCellsAreNull) {
  std::vector<PointRecord> records = {{0.1, 0.1, {1.0}}};
  auto grid =
      BuildGridFromPoints(records, 2, 2, UnitExtent(), CountSumAvgDefs());
  ASSERT_TRUE(grid.ok());
  EXPECT_FALSE(grid->IsNull(0, 0));
  EXPECT_TRUE(grid->IsNull(0, 1));
  EXPECT_TRUE(grid->IsNull(1, 0));
  EXPECT_TRUE(grid->IsNull(1, 1));
  EXPECT_EQ(grid->NumValidCells(), 1u);
}

TEST(GridBuilderTest, RecordsOutsideExtentAreDroppedAndCounted) {
  std::vector<PointRecord> records = {
      {0.5, 0.5, {1.0}},
      {2.0, 0.5, {1.0}},   // lat out of range
      {0.5, -0.1, {1.0}},  // lon out of range
  };
  size_t dropped = 0;
  auto grid = BuildGridFromPoints(records, 2, 2, UnitExtent(),
                                  CountSumAvgDefs(), &dropped);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(grid->NumValidCells(), 1u);
}

TEST(GridBuilderTest, BoundaryPointsLandInLastCell) {
  std::vector<PointRecord> records = {{1.0, 1.0, {1.0}}};
  auto grid =
      BuildGridFromPoints(records, 3, 3, UnitExtent(), CountSumAvgDefs());
  ASSERT_TRUE(grid.ok());
  EXPECT_FALSE(grid->IsNull(2, 2));
  EXPECT_DOUBLE_EQ(grid->At(2, 2, 0), 1.0);
}

TEST(GridBuilderTest, IntegerAttributesRounded) {
  using Source = GridAttributeDef::Source;
  std::vector<GridAttributeDef> defs = {
      {"avg_int", Source::kAverage, 0, AggType::kAverage, true}};
  std::vector<PointRecord> records = {
      {0.1, 0.1, {3.0}},
      {0.15, 0.15, {4.0}},
      {0.12, 0.12, {4.0}},
  };
  auto grid = BuildGridFromPoints(records, 1, 1, UnitExtent(), defs);
  ASSERT_TRUE(grid.ok());
  // mean = 11/3 = 3.67 -> rounds to 4.
  EXPECT_DOUBLE_EQ(grid->At(0, 0, 0), 4.0);
}

TEST(GridBuilderTest, SchemaCarriedIntoGrid) {
  auto grid = BuildGridFromPoints({{0.5, 0.5, {1.0}}}, 1, 1, UnitExtent(),
                                  CountSumAvgDefs());
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid->num_attributes(), 3u);
  EXPECT_EQ(grid->attributes()[0].name, "count");
  EXPECT_EQ(grid->attributes()[0].agg_type, AggType::kSum);
  EXPECT_TRUE(grid->attributes()[0].is_integer);
  EXPECT_EQ(grid->attributes()[2].agg_type, AggType::kAverage);
}

TEST(GridBuilderTest, RejectsZeroDimensions) {
  EXPECT_FALSE(
      BuildGridFromPoints({}, 0, 2, UnitExtent(), CountSumAvgDefs()).ok());
}

TEST(GridBuilderTest, RejectsEmptyDefs) {
  EXPECT_FALSE(BuildGridFromPoints({}, 2, 2, UnitExtent(), {}).ok());
}

TEST(GridBuilderTest, RejectsMissingFieldIndex) {
  using Source = GridAttributeDef::Source;
  std::vector<GridAttributeDef> defs = {
      {"bad", Source::kSum, -1, AggType::kSum, false}};
  EXPECT_FALSE(BuildGridFromPoints({}, 2, 2, UnitExtent(), defs).ok());
}

TEST(GridBuilderTest, RejectsRecordsWithTooFewFields) {
  using Source = GridAttributeDef::Source;
  std::vector<GridAttributeDef> defs = {
      {"f3", Source::kSum, 3, AggType::kSum, false}};
  std::vector<PointRecord> records = {{0.5, 0.5, {1.0}}};
  EXPECT_FALSE(BuildGridFromPoints(records, 1, 1, UnitExtent(), defs).ok());
}

}  // namespace
}  // namespace srp
