#include "core/homogeneous.h"

#include <gtest/gtest.h>

#include "core/information_loss.h"
#include "data/datasets.h"

namespace srp {
namespace {

GridDataset Gradient(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, 10.0 + static_cast<double>(r * cols + c));
    }
  }
  return g;
}

TEST(HomogeneousMergeTest, MergeTwoRowsHalvesRowCount) {
  const GridDataset g = Gradient(4, 4);
  auto p = HomogeneousMerge(g, 2, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_groups(), 8u);  // 2 row-bands x 4 columns
  EXPECT_TRUE(p->Validate(g).ok());
  EXPECT_EQ(p->groups[0].height(), 2u);
  EXPECT_EQ(p->groups[0].width(), 1u);
}

TEST(HomogeneousMergeTest, MergeBothDimensions) {
  const GridDataset g = Gradient(4, 6);
  auto p = HomogeneousMerge(g, 2, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_groups(), 6u);
  for (const CellGroup& cg : p->groups) EXPECT_EQ(cg.NumCells(), 4u);
}

TEST(HomogeneousMergeTest, RaggedBordersGetSmallerGroups) {
  const GridDataset g = Gradient(5, 5);
  auto p = HomogeneousMerge(g, 2, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Validate(g).ok());
  EXPECT_EQ(p->num_groups(), 9u);  // 3x3 blocks, border ones smaller
  EXPECT_EQ(p->groups.back().NumCells(), 1u);
}

TEST(HomogeneousMergeTest, MixedNullGroupsUseValidCellsOnly) {
  GridDataset g(2, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 10.0);
  g.Set(0, 1, 0, 20.0);
  g.Set(1, 0, 0, 30.0);
  // (1,1) null. Single 2x2 group: sum over 3 valid cells = 60, and the
  // summation divisor is the valid count (3), not the rectangle size (4).
  auto p = HomogeneousMerge(g, 2, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->features[0][0], 60.0);
  EXPECT_EQ(p->group_valid_count[0], 3u);
  EXPECT_DOUBLE_EQ(RepresentativeValue(g, *p, 0, 0, 0), 20.0);
}

TEST(HomogeneousMergeTest, AllNullGroupIsNull) {
  GridDataset g(2, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 1.0);  // only cell (0,0) valid
  auto p = HomogeneousMerge(g, 1, 2);
  ASSERT_TRUE(p.ok());
  // Group of cells (1,0),(1,1) is entirely null.
  EXPECT_EQ(p->group_null[1], 1);
}

TEST(HomogeneousMergeTest, RejectsZeroFactor) {
  const GridDataset g = Gradient(4, 4);
  EXPECT_FALSE(HomogeneousMerge(g, 0, 2).ok());
}

TEST(HomogeneousMergeLossTest, LossGrowsWithFactor) {
  DatasetOptions options;
  options.rows = 24;
  options.cols = 24;
  options.seed = 4;
  auto grid = GenerateDataset(DatasetKind::kVehiclesUni, options);
  ASSERT_TRUE(grid.ok());
  auto loss2 = HomogeneousMergeLoss(*grid, 2, 2);
  auto loss4 = HomogeneousMergeLoss(*grid, 4, 4);
  ASSERT_TRUE(loss2.ok());
  ASSERT_TRUE(loss4.ok());
  EXPECT_GT(*loss4, *loss2);
  EXPECT_GT(*loss2, 0.0);
}

TEST(HomogeneousRepartitionTest, StopsBeforeExceedingThreshold) {
  DatasetOptions options;
  options.rows = 20;
  options.cols = 20;
  options.seed = 6;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripUni, options);
  ASSERT_TRUE(grid.ok());
  auto result = HomogeneousRepartition(*grid, 0.3);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->information_loss, 0.3);
  EXPECT_TRUE(result->partition.Validate(*grid).ok());
}

TEST(HomogeneousRepartitionTest, TinyThresholdKeepsTrivialPartition) {
  const GridDataset g = Gradient(6, 6);
  auto result = HomogeneousRepartition(g, 1e-6);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merge_factor, 1u);
  EXPECT_EQ(result->partition.num_groups(), g.num_cells());
}

TEST(HomogeneousRepartitionTest, RejectsBadThreshold) {
  const GridDataset g = Gradient(4, 4);
  EXPECT_FALSE(HomogeneousRepartition(g, -0.5).ok());
  EXPECT_FALSE(HomogeneousRepartition(g, 2.0).ok());
}

}  // namespace
}  // namespace srp
