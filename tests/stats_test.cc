#include "linalg/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(StatsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
}

TEST(StatsTest, Variance) {
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);  // mean 2, deviations ±1
}

TEST(StatsTest, SampleStdDev) {
  EXPECT_DOUBLE_EQ(SampleStdDev({1}), 0.0);
  EXPECT_NEAR(SampleStdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(StatsTest, QuantileInterpolation) {
  const std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.125), 5.0);  // halfway between 0 and 10
}

TEST(StatsTest, StandardizeInPlaceZeroMeanUnitStd) {
  std::vector<double> v{1, 2, 3, 4, 5};
  const Standardization s = StandardizeInPlace(&v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(Mean(v), 0.0, 1e-12);
  EXPECT_NEAR(SampleStdDev(v), 1.0, 1e-12);
}

TEST(StatsTest, StandardizeConstantVectorStaysFinite) {
  std::vector<double> v{4, 4, 4};
  const Standardization s = StandardizeInPlace(&v);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

}  // namespace
}  // namespace srp
