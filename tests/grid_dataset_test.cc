#include "grid/grid_dataset.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

std::vector<AttributeSpec> TwoAttrs() {
  return {{"count", AggType::kSum, true}, {"price", AggType::kAverage, false}};
}

TEST(GridDatasetTest, StartsAllNull) {
  GridDataset g(3, 4, TwoAttrs());
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_EQ(g.num_cells(), 12u);
  EXPECT_EQ(g.num_attributes(), 2u);
  EXPECT_EQ(g.NumValidCells(), 0u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_TRUE(g.IsNull(r, c));
  }
}

TEST(GridDatasetTest, SetMarksValid) {
  GridDataset g(2, 2, TwoAttrs());
  g.Set(0, 1, 0, 5.0);
  EXPECT_FALSE(g.IsNull(0, 1));
  EXPECT_TRUE(g.IsNull(0, 0));
  EXPECT_DOUBLE_EQ(g.At(0, 1, 0), 5.0);
  EXPECT_EQ(g.NumValidCells(), 1u);
}

TEST(GridDatasetTest, SetFeatureVector) {
  GridDataset g(2, 2, TwoAttrs());
  g.SetFeatureVector(1, 0, {3.0, 7.5});
  EXPECT_DOUBLE_EQ(g.At(1, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.At(1, 0, 1), 7.5);
  EXPECT_FALSE(g.IsNull(1, 0));
}

TEST(GridDatasetTest, CellIndexRowMajor) {
  GridDataset g(3, 5, TwoAttrs());
  EXPECT_EQ(g.CellIndex(0, 0), 0u);
  EXPECT_EQ(g.CellIndex(0, 4), 4u);
  EXPECT_EQ(g.CellIndex(1, 0), 5u);
  EXPECT_EQ(g.CellIndex(2, 4), 14u);
}

TEST(GridDatasetTest, AttributeIndexByName) {
  GridDataset g(2, 2, TwoAttrs());
  EXPECT_EQ(g.AttributeIndex("count"), 0);
  EXPECT_EQ(g.AttributeIndex("price"), 1);
  EXPECT_EQ(g.AttributeIndex("missing"), -1);
}

TEST(GridDatasetTest, CentroidsSpanExtent) {
  GeoExtent e{0.0, 1.0, 10.0, 12.0};
  GridDataset g(2, 4, TwoAttrs(), e);
  const Centroid c00 = g.CellCentroid(0, 0);
  EXPECT_DOUBLE_EQ(c00.lat, 0.25);
  EXPECT_DOUBLE_EQ(c00.lon, 10.25);
  const Centroid c13 = g.CellCentroid(1, 3);
  EXPECT_DOUBLE_EQ(c13.lat, 0.75);
  EXPECT_DOUBLE_EQ(c13.lon, 11.75);
}

TEST(GridDatasetTest, ValidateAcceptsGoodGrid) {
  GridDataset g(2, 2, TwoAttrs());
  g.Set(0, 0, 0, 1.0);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GridDatasetTest, ValidateRejectsNoAttributes) {
  GridDataset g(2, 2, {});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GridDatasetTest, ValidateRejectsDegenerateExtent) {
  GridDataset g(2, 2, TwoAttrs(), GeoExtent{1.0, 1.0, 0.0, 1.0});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GridDatasetTest, ValidateRejectsEmptyGrid) {
  GridDataset g(0, 3, TwoAttrs());
  EXPECT_FALSE(g.Validate().ok());
}

}  // namespace
}  // namespace srp
