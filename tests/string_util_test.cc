#include "util/string_util.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string s = "x|y|z|";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(PadRightTest, PadsAndKeepsLong) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace srp
