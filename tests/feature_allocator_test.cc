#include "core/feature_allocator.h"

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "core/variation.h"

namespace srp {
namespace {

/// Builds a partition with one group covering the whole grid.
Partition WholeGridGroup(const GridDataset& g) {
  Partition p;
  p.rows = g.rows();
  p.cols = g.cols();
  p.groups.push_back(CellGroup{0, static_cast<uint32_t>(g.rows() - 1), 0,
                               static_cast<uint32_t>(g.cols() - 1)});
  p.cell_to_group.assign(g.num_cells(), 0);
  return p;
}

TEST(LocalLossTest, Eq2IsMeanAbsoluteDeviation) {
  EXPECT_DOUBLE_EQ(LocalLoss({1, 2, 3}, 2.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(LocalLoss({5, 5, 5}, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(LocalLoss({0, 10}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(LocalLoss({}, 1.0), 0.0);
}

TEST(FeatureAllocatorTest, SummationSumsCells) {
  GridDataset g(1, 3, {{"count", AggType::kSum, true}});
  g.Set(0, 0, 0, 5);
  g.Set(0, 1, 0, 7);
  g.Set(0, 2, 0, 2);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(p.features[0][0], 14.0);
  EXPECT_EQ(p.group_valid_count[0], 3u);
}

TEST(FeatureAllocatorTest, AverageRoundsIntegerTypedAttributes) {
  // Paper Example 4: mean 23.67 rounds to 24 while mode is 23; losses tie
  // and the mean (24) wins.
  GridDataset g(1, 6, {{"a", AggType::kAverage, true}});
  // Values chosen so the mean is 23.67: {23, 23, 23, 24, 24, 25}.
  const double values[] = {23, 23, 23, 24, 24, 25};
  for (size_t c = 0; c < 6; ++c) g.Set(0, c, 0, values[c]);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  // mean = 23.67 -> 24 (rounded). lossA = (1+1+1+0+0+1)/6 = 4/6.
  // mode = 23.        lossB = (0+0+0+1+1+2)/6 = 4/6. Tie -> mean.
  EXPECT_DOUBLE_EQ(p.features[0][0], 24.0);
}

TEST(FeatureAllocatorTest, ModeWinsWhenItHasLowerLocalLoss) {
  // Values {10, 10, 10, 40}: mean 17.5, mode 10.
  // lossA = (7.5*3 + 22.5)/4 = 11.25; lossB = (0*3 + 30)/4 = 7.5 -> mode.
  GridDataset g(1, 4, {{"a", AggType::kAverage, false}});
  const double values[] = {10, 10, 10, 40};
  for (size_t c = 0; c < 4; ++c) g.Set(0, c, 0, values[c]);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(p.features[0][0], 10.0);
}

TEST(FeatureAllocatorTest, MeanWinsOnSymmetricValues) {
  // Values {1, 2, 3}: mean 2 (loss 2/3), mode 1 (loss 1) -> mean.
  GridDataset g(1, 3, {{"a", AggType::kAverage, false}});
  for (size_t c = 0; c < 3; ++c) g.Set(0, c, 0, static_cast<double>(c + 1));
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(p.features[0][0], 2.0);
}

TEST(FeatureAllocatorTest, NullGroupsGetNullFeatureVector) {
  GridDataset g(2, 2, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 3.0);
  g.Set(0, 1, 0, 3.0);
  // Row 1 stays null.
  const PairVariations pv = ComputePairVariations(g);
  Partition p = CellGroupExtractor(pv).Extract(10.0);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  bool saw_null_group = false;
  for (size_t gr = 0; gr < p.num_groups(); ++gr) {
    if (p.group_null[gr]) {
      saw_null_group = true;
      EXPECT_EQ(p.group_valid_count[gr], 0u);
    }
  }
  EXPECT_TRUE(saw_null_group);
}

TEST(FeatureAllocatorTest, MultivariateMixedAggTypes) {
  GridDataset g(1, 2,
                {{"count", AggType::kSum, true},
                 {"price", AggType::kAverage, false}});
  g.SetFeatureVector(0, 0, {3, 100.0});
  g.SetFeatureVector(0, 1, {5, 200.0});
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(p.features[0][0], 8.0);    // summed
  EXPECT_DOUBLE_EQ(p.features[0][1], 150.0);  // averaged (mean loss <= mode)
}

TEST(FeatureAllocatorTest, RejectsDimensionMismatch) {
  GridDataset g(2, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 1.0);
  Partition p;
  p.rows = 3;
  p.cols = 3;
  EXPECT_FALSE(AllocateFeatures(g, &p).ok());
}

}  // namespace
}  // namespace srp
