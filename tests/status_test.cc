#include "util/status.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("io").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("un").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("dl").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(StatusTest, InterruptStatusesAreNotOk) {
  const Status cancelled = Status::Cancelled("stop requested");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: stop requested");
  const Status deadline = Status::DeadlineExceeded("budget spent");
  EXPECT_FALSE(deadline.ok());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: budget spent");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
  EXPECT_FALSE(s.ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(std::move(r).value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(std::move(r).value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SRP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Status UseAssign(int x, int* out) {
  SRP_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  SRP_ASSIGN_OR_RETURN(int quadrupled, Doubled(doubled));
  *out = quadrupled;
  return Status::OK();
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_EQ(macros::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnBindsAndPropagates) {
  int out = 0;
  ASSERT_TRUE(macros::UseAssign(3, &out).ok());
  EXPECT_EQ(out, 12);
  EXPECT_FALSE(macros::UseAssign(-3, &out).ok());
}

}  // namespace
}  // namespace srp
