// Tests of the hardware-counter group and the sampling wall-clock profiler
// (DESIGN.md §10). Hardware counters are legitimately unavailable in many CI
// containers (seccomp, perf_event_paranoid, VMs without a PMU), so those
// tests accept either live counts or an explicit unavailable_reason — what
// they never accept is a crash or a silent all-zero report.

#include "obs/profiler.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/timer.h"

namespace srp {
namespace obs {
namespace {

/// Burns CPU for `seconds` so the 997 Hz sampler has something to catch.
double SpinFor(double seconds) {
  volatile double acc = 1.0;
  WallTimer timer;
  while (timer.ElapsedSeconds() < seconds) {
    for (int i = 1; i < 1000; ++i) acc = acc + 1.0 / static_cast<double>(i);
  }
  return acc;
}

TEST(HwCounterGroupTest, CountsOrExplainsUnavailability) {
  HwCounterGroup group;
  if (!group.available()) {
    EXPECT_FALSE(group.unavailable_reason().empty());
    // The degraded group must still be safe to drive through the full
    // Start/Stop/Read lifecycle.
    EXPECT_TRUE(group.Start().ok());
    group.Stop();
    const HwCounterValues values = group.Read();
    EXPECT_EQ(values.cycles, 0);
    EXPECT_EQ(values.instructions, 0);
    return;
  }
  EXPECT_TRUE(group.unavailable_reason().empty());
  ASSERT_TRUE(group.Start().ok());
  SpinFor(0.02);
  group.Stop();
  const HwCounterValues values = group.Read();
  EXPECT_GT(values.cycles, 0);
  EXPECT_GE(values.time_enabled_ns, 0);
  // Stopped counters keep returning the final totals.
  EXPECT_EQ(group.Read().cycles, values.cycles);
}

TEST(HwCounterValuesTest, ArithmeticAndIpc) {
  HwCounterValues a;
  a.cycles = 100;
  a.instructions = 250;
  a.cache_misses = 7;
  HwCounterValues b;
  b.cycles = 40;
  b.instructions = 50;
  b.cache_misses = 2;

  const HwCounterValues diff = a - b;
  EXPECT_EQ(diff.cycles, 60);
  EXPECT_EQ(diff.instructions, 200);
  EXPECT_EQ(diff.cache_misses, 5);

  HwCounterValues sum = b;
  sum += diff;
  EXPECT_EQ(sum.cycles, a.cycles);
  EXPECT_EQ(sum.instructions, a.instructions);

  EXPECT_DOUBLE_EQ(a.InstructionsPerCycle(), 2.5);
  EXPECT_DOUBLE_EQ(HwCounterValues().InstructionsPerCycle(), 0.0);
}

TEST(SamplingProfilerTest, CollectsFoldedStacksUnderLoad) {
  SetProfilerThreadLabel("profiler-test");
  SamplingProfiler profiler;
  const Status started = profiler.Start();
#if !defined(__linux__)
  EXPECT_FALSE(started.ok());
  return;
#endif
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(profiler.running());

  WallTimer timer;
  while (profiler.CollectedSamples() < 1 && timer.ElapsedSeconds() < 10.0) {
    SpinFor(0.01);
  }
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  ASSERT_GE(profiler.CollectedSamples(), 1u);

  const std::vector<std::string> stacks = profiler.FoldedStacks();
  ASSERT_FALSE(stacks.empty());
  for (const std::string& line : stacks) {
    // "label;frame;...;frame count": at least one separator, a positive
    // trailing count, and this thread's label as the root frame.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
    EXPECT_NE(line.find(';'), std::string::npos) << line;
    EXPECT_EQ(line.rfind("profiler-test;", 0), 0u) << line;
  }
}

TEST(SamplingProfilerTest, SecondProfilerCannotStartWhileOneRuns) {
#if !defined(__linux__)
  GTEST_SKIP() << "profiler unsupported on this platform";
#endif
  SamplingProfiler first;
  ASSERT_TRUE(first.Start().ok());
  SamplingProfiler second;
  EXPECT_FALSE(second.Start().ok());
  ASSERT_TRUE(first.Stop().ok());
  // Stop is idempotent.
  EXPECT_TRUE(first.Stop().ok());
  // The slot frees up once the first profiler stops.
  EXPECT_TRUE(second.Start().ok());
  EXPECT_TRUE(second.Stop().ok());
}

TEST(SamplingProfilerTest, EmptyProfileWritesSentinelLine) {
  SamplingProfiler profiler;
  const std::string path =
      ::testing::TempDir() + "/profiler_test_empty.folded";
  ASSERT_TRUE(profiler.WriteFolded(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {0};
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, n), "no_samples 1\n");
}

TEST(SamplingProfilerTest, WriteFoldedFailsOnBadPath) {
  SamplingProfiler profiler;
  EXPECT_FALSE(profiler.WriteFolded("/nonexistent-dir/prof.folded").ok());
}

}  // namespace
}  // namespace obs
}  // namespace srp
