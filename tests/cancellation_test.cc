// Tests for cooperative cancellation, deadlines and the graceful-degradation
// contract (DESIGN.md §8): strict mode fails with Cancelled /
// DeadlineExceeded; best-effort drivers return a valid best-so-far partition
// with `interrupted = true` whose reported IFL matches an independent
// recomputation; building blocks (grid builder, baselines, streaming ingest,
// ParallelFor/Reduce) always stop cleanly without a degraded result.

#include "fail/cancellation.h"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/clustering_reduction.h"
#include "fail/checkpoint.h"
#include "baselines/regionalization.h"
#include "baselines/sampling.h"
#include "core/homogeneous.h"
#include "core/information_loss.h"
#include "core/repartitioner.h"
#include "grid/grid_builder.h"
#include "parallel/parallel_for.h"
#include "st/st_repartitioner.h"
#include "st/temporal_grid.h"
#include "stream/streaming_repartitioner.h"

namespace srp {
namespace {

GeoExtent UnitExtent() { return GeoExtent{0.0, 1.0, 0.0, 1.0}; }

GridDataset SmoothGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, 100.0 + static_cast<double>(r + c));
    }
  }
  return g;
}

RunContext& Cancelled(RunContext& ctx) {
  CancellationToken token;
  token.RequestCancel();
  ctx.set_token(token);
  return ctx;
}

TEST(RunContextTest, FreshContextIsNotInterrupted) {
  RunContext ctx;
  EXPECT_FALSE(ctx.Interrupted());
  EXPECT_FALSE(ctx.PollWorker());
  EXPECT_EQ(ctx.interrupt_kind(), InterruptKind::kNone);
  EXPECT_TRUE(ctx.InterruptStatus().ok());
  EXPECT_TRUE(std::isinf(ctx.RemainingSeconds()));
}

TEST(RunContextTest, CancellationIsSticky) {
  CancellationToken token;
  RunContext ctx;
  ctx.set_token(token);
  EXPECT_FALSE(ctx.Interrupted());
  token.RequestCancel();
  EXPECT_TRUE(ctx.Interrupted());
  EXPECT_EQ(ctx.interrupt_kind(), InterruptKind::kCancelled);
  EXPECT_EQ(ctx.InterruptStatus().code(), StatusCode::kCancelled);
  // Sticky: stays interrupted on every later poll.
  EXPECT_TRUE(ctx.Interrupted());
}

TEST(RunContextTest, ExpiredDeadlineInterrupts) {
  RunContext ctx;
  ctx.set_deadline_after_seconds(-1.0);
  EXPECT_LT(ctx.RemainingSeconds(), 0.0);
  EXPECT_TRUE(ctx.Interrupted());
  EXPECT_EQ(ctx.interrupt_kind(), InterruptKind::kDeadlineExceeded);
  EXPECT_EQ(ctx.InterruptStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, FirstObservedCauseWins) {
  RunContext ctx;
  Cancelled(ctx);
  ASSERT_TRUE(ctx.Interrupted());
  ctx.set_deadline_after_seconds(-1.0);
  EXPECT_EQ(ctx.interrupt_kind(), InterruptKind::kCancelled);
}

TEST(ParallelCancellationTest, InterruptedForLeavesUnstartedChunksUntouched) {
  const size_t n = 10'000;
  std::vector<int> out(n, 0);
  RunContext ctx;
  Cancelled(ctx);
  ParallelFor(
      nullptr, 0, n, 64,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = 1;
      },
      &ctx);
  // Pre-interrupted: the poll before the first chunk already stops the loop.
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 0) << i;
}

TEST(ParallelCancellationTest, InterruptedReduceReturnsIdentityPartials) {
  RunContext ctx;
  Cancelled(ctx);
  const double sum = ParallelReduce<double>(
      nullptr, 0, 1000, 10, 0.0,
      [](size_t begin, size_t end) {
        return static_cast<double>(end - begin);
      },
      [](double a, double b) { return a + b; }, &ctx);
  // Partial by contract — with a pre-interrupted ctx nothing was mapped.
  EXPECT_DOUBLE_EQ(sum, 0.0);
  EXPECT_TRUE(ctx.Interrupted());
}

TEST(CancellationTest, PreCancelledRunFailsStrict) {
  RunContext ctx;
  Cancelled(ctx);
  auto result = Repartitioner().Run(SmoothGrid(8, 8), &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, ExpiredDeadlineFailsStrict) {
  RunContext ctx;
  ctx.set_deadline_after_seconds(-1.0);
  auto result = Repartitioner().Run(SmoothGrid(8, 8), &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTest, BestEffortReturnsConsistentBestSoFar) {
  const GridDataset grid = SmoothGrid(10, 10);
  RunContext ctx;
  ctx.set_deadline_after_seconds(-1.0);  // interrupts at the first poll
  ctx.set_best_effort(true);
  auto result = Repartitioner().Run(grid, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->stats.interrupted);
  // The degraded partition is feasible and its reported IFL matches an
  // independent from-scratch recomputation.
  EXPECT_TRUE(result->partition.Validate(grid).ok());
  EXPECT_NEAR(InformationLoss(grid, result->partition),
              result->information_loss, 1e-12);
}

TEST(CancellationTest, ZeroBudgetBestEffortStillSeedsAndCheckpointsTrivially) {
  // Regression: a deadline-ms=0 run (the deadline expires before the first
  // poll) must still degrade to the seeded trivial partition with
  // interrupted=true AND leave a generation-0 checkpoint of it — zero
  // iterations of progress is still resumable state (DESIGN.md §13).
  const GridDataset grid = SmoothGrid(10, 10);
  const std::string dir = testing::TempDir() + "/cancel_ckpt_zero_budget";
  std::filesystem::remove_all(dir);

  CheckpointWriter::Options wopt;
  wopt.directory = dir;
  wopt.grid_fingerprint = GridFingerprint(grid);
  CheckpointWriter writer(wopt);
  ASSERT_TRUE(writer.Init().ok());

  RunContext ctx;
  ctx.set_deadline_after_seconds(0.0);
  ctx.set_best_effort(true);
  RepartitionOptions options;
  options.checkpoint = &writer;  // checkpoint_every = 0: interrupt-time only
  auto result = Repartitioner(options).Run(grid, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->stats.interrupted);
  EXPECT_EQ(result->iterations, 0u);
  EXPECT_EQ(result->partition.num_groups(), grid.rows() * grid.cols());
  EXPECT_DOUBLE_EQ(result->information_loss, 0.0);

  EXPECT_EQ(writer.latest_generation(), 0);
  auto stored = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ(stored->state.generation, 0u);
  EXPECT_EQ(stored->state.iterations, 0u);
  EXPECT_DOUBLE_EQ(stored->state.previous_variation, -1.0);
  EXPECT_TRUE(stored->state.ValidateFor(grid).ok());
}

TEST(CancellationTest, MidRunCancelKeepsInvariants) {
  // Cancel from another thread while the run is in flight. Whether the
  // cancel lands before or after completion, the best-effort contract
  // holds: a valid partition with a consistent IFL either way.
  const GridDataset grid = SmoothGrid(48, 48);
  CancellationToken token;
  RunContext ctx;
  ctx.set_token(token);
  ctx.set_best_effort(true);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    token.RequestCancel();
  });
  RepartitionOptions options;
  options.ifl_threshold = 0.25;
  auto result = Repartitioner(options).Run(grid, &ctx);
  canceller.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partition.Validate(grid).ok());
  EXPECT_NEAR(InformationLoss(grid, result->partition),
              result->information_loss, 1e-12);
}

TEST(CancellationTest, UncancelledContextMatchesNullContext) {
  const GridDataset grid = SmoothGrid(12, 12);
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.num_threads = 1;
  auto base = Repartitioner(options).Run(grid);
  RunContext ctx;  // never interrupted
  auto ctxed = Repartitioner(options).Run(grid, &ctx);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(ctxed.ok());
  EXPECT_FALSE(ctxed->stats.interrupted);
  EXPECT_EQ(base->partition.cell_to_group, ctxed->partition.cell_to_group);
  EXPECT_DOUBLE_EQ(base->information_loss, ctxed->information_loss);
}

TEST(CancellationTest, HomogeneousDegradesOrFailsByPolicy) {
  const GridDataset grid = SmoothGrid(8, 8);
  RunContext strict;
  Cancelled(strict);
  auto failed = HomogeneousRepartition(grid, 0.1, 1, &strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCancelled);

  RunContext soft;
  Cancelled(soft);
  soft.set_best_effort(true);
  auto degraded = HomogeneousRepartition(grid, 0.1, 1, &soft);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->interrupted);
  EXPECT_TRUE(degraded->partition.Validate(grid).ok());
}

TEST(CancellationTest, StRepartitionerDegradesOrFailsByPolicy) {
  TemporalGridSeries series;
  ASSERT_TRUE(series.AddSlice(SmoothGrid(8, 8)).ok());
  ASSERT_TRUE(series.AddSlice(SmoothGrid(8, 8)).ok());

  RunContext strict;
  Cancelled(strict);
  auto failed = StRepartitioner().Run(series, &strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCancelled);

  RunContext soft;
  Cancelled(soft);
  soft.set_best_effort(true);
  auto degraded = StRepartitioner().Run(series, &soft);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->interrupted);
  EXPECT_EQ(degraded->slice_features.size(), series.num_slices());
}

TEST(CancellationTest, BaselinesNeverDegrade) {
  const GridDataset grid = SmoothGrid(8, 8);
  RunContext ctx;
  Cancelled(ctx);
  ctx.set_best_effort(true);  // ignored: baselines have no best-so-far

  SpatialSamplingOptions sampling;
  sampling.target_samples = 8;
  EXPECT_EQ(SpatialSampling(grid, sampling, &ctx).status().code(),
            StatusCode::kCancelled);

  RegionalizationOptions region;
  region.target_regions = 8;
  EXPECT_EQ(Regionalize(grid, region, &ctx).status().code(),
            StatusCode::kCancelled);

  ClusteringReductionOptions clustering;
  clustering.target_clusters = 8;
  EXPECT_EQ(ClusteringReduction(grid, clustering, &ctx).status().code(),
            StatusCode::kCancelled);
}

TEST(CancellationTest, GridBuilderStopsMidIngest) {
  // More records than the poll stride so the in-loop poll actually runs.
  std::vector<PointRecord> records(10'000, PointRecord{0.5, 0.5, {}});
  RunContext ctx;
  Cancelled(ctx);
  using Source = GridAttributeDef::Source;
  auto grid = BuildGridFromPoints(
      records, 4, 4, UnitExtent(),
      {{"events", Source::kCount, -1, AggType::kSum, true}}, nullptr, &ctx);
  ASSERT_FALSE(grid.ok());
  EXPECT_EQ(grid.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, StreamingIngestIsAllOrNothing) {
  using Source = GridAttributeDef::Source;
  StreamingRepartitioner::Options options;
  StreamingRepartitioner stream(
      4, 4, UnitExtent(),
      {{"events", Source::kCount, -1, AggType::kSum, true}}, options);
  RunContext ctx;
  Cancelled(ctx);
  const Status status = stream.Ingest({{0.5, 0.5, {}}}, &ctx);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // The rejected batch left no trace in the accumulators.
  EXPECT_EQ(stream.ingested_records(), 0u);
  ASSERT_TRUE(stream.Ingest({{0.5, 0.5, {}}}).ok());
  EXPECT_EQ(stream.ingested_records(), 1u);
}

TEST(CancellationTest, StreamingRefreshKeepsPreviousPartitionOnInterrupt) {
  using Source = GridAttributeDef::Source;
  StreamingRepartitioner::Options options;
  options.repartition.ifl_threshold = 0.2;
  StreamingRepartitioner stream(
      4, 4, UnitExtent(),
      {{"events", Source::kCount, -1, AggType::kSum, true}}, options);
  std::vector<PointRecord> batch;
  for (int i = 0; i < 32; ++i) {
    const double t = (0.5 + static_cast<double>(i)) / 32.0;
    batch.push_back({t, t, {}});
  }
  ASSERT_TRUE(stream.Ingest(batch).ok());
  ASSERT_TRUE(stream.Refresh().ok());
  const size_t groups = stream.partition().num_groups();
  ASSERT_GT(groups, 0u);

  RunContext ctx;
  Cancelled(ctx);
  EXPECT_EQ(stream.Refresh(&ctx).code(), StatusCode::kCancelled);
  // The failed refresh did not clobber the accepted partition.
  EXPECT_EQ(stream.partition().num_groups(), groups);
}

}  // namespace
}  // namespace srp
