// Tests for the lock-free per-thread flight-recorder journal (DESIGN.md
// §11): append/snapshot ordering, ring wrap-around, thread labels, the
// process-wide phase, the per-thread active span id, the crash-cause buffer
// and the interrupt hook the fail layer fires through.

#include "obs/journal.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace srp {
namespace obs {
namespace {

/// Resets the journal around every test so cases are independent. The
/// journal ships enabled; restore that on the way out.
class JournalTest : public testing::Test {
 protected:
  void SetUp() override {
    Journal::ResetForTesting();
    Journal::SetEnabled(true);
  }
  void TearDown() override {
    Journal::ResetForTesting();
    Journal::SetEnabled(true);
  }
};

TEST_F(JournalTest, AppendShowsUpInMergedSnapshotInOrder) {
  Journal::Append(JournalEventKind::kLog, 1, "first");
  Journal::Append(JournalEventKind::kFault, 0, "second");
  const std::vector<JournalEvent> merged = Journal::SnapshotMerged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_LT(merged[0].seq, merged[1].seq);
  EXPECT_LE(merged[0].ts_ns, merged[1].ts_ns);
  EXPECT_STREQ(merged[0].text, "first");
  EXPECT_EQ(merged[0].kind, JournalEventKind::kLog);
  EXPECT_EQ(merged[0].level, 1);
  EXPECT_STREQ(merged[1].text, "second");
  EXPECT_EQ(merged[1].kind, JournalEventKind::kFault);
  EXPECT_EQ(Journal::total_events(), 2u);
}

TEST_F(JournalTest, RingWrapKeepsTheNewestEvents) {
  const size_t appended = kJournalEventsPerThread + 50;
  for (size_t i = 0; i < appended; ++i) {
    Journal::Appendf(JournalEventKind::kLog, 0, "event %zu", i);
  }
  const std::vector<JournalThreadSnapshot> threads = Journal::SnapshotThreads();
  ASSERT_EQ(threads.size(), 1u);
  const JournalThreadSnapshot& snap = threads[0];
  EXPECT_EQ(snap.total_appends, appended);
  ASSERT_EQ(snap.events.size(), kJournalEventsPerThread);
  // Oldest retained event is the one right after the overwritten prefix.
  EXPECT_EQ(std::string(snap.events.front().text), "event 50");
  EXPECT_EQ(std::string(snap.events.back().text),
            "event " + std::to_string(appended - 1));
  // Snapshot order is append order.
  for (size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LT(snap.events[i - 1].seq, snap.events[i].seq);
  }
}

TEST_F(JournalTest, ThreadLabelIsCopiedAndTruncated) {
  Journal::SetThreadLabel("main");
  EXPECT_STREQ(Journal::ThreadLabel(), "main");
  Journal::Append(JournalEventKind::kLog, 1, "labelled");
  const auto threads = Journal::SnapshotThreads();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].label, "main");
  EXPECT_TRUE(threads[0].live);

  const std::string longer(2 * kJournalThreadLabelCapacity, 'x');
  Journal::SetThreadLabel(longer.c_str());
  EXPECT_EQ(std::strlen(Journal::ThreadLabel()),
            kJournalThreadLabelCapacity - 1);
}

TEST_F(JournalTest, PhaseScopeRestoresPreviousPhase) {
  EXPECT_STREQ(Journal::CurrentPhase(), "");
  {
    JournalPhaseScope outer("test.outer");
    EXPECT_STREQ(Journal::CurrentPhase(), "test.outer");
    {
      JournalPhaseScope inner("test.inner");
      EXPECT_STREQ(Journal::CurrentPhase(), "test.inner");
    }
    EXPECT_STREQ(Journal::CurrentPhase(), "test.outer");
  }
  EXPECT_STREQ(Journal::CurrentPhase(), "");
}

TEST_F(JournalTest, PhaseChangeAppendsOneEventOnlyWhenItChanges) {
  Journal::SetPhase("test.phase_a");
  Journal::SetPhase("test.phase_a");  // no-op: unchanged
  Journal::SetPhase("test.phase_b");
  const std::vector<JournalEvent> merged = Journal::SnapshotMerged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].kind, JournalEventKind::kPhase);
  EXPECT_STREQ(merged[0].text, "test.phase_a");
  EXPECT_STREQ(merged[1].text, "test.phase_b");
  Journal::SetPhase("");
}

TEST_F(JournalTest, ActiveSpanIdIsPerThread) {
  Journal::SetActiveSpanId(42);
  EXPECT_EQ(Journal::ActiveSpanId(), 42u);
  uint64_t seen_in_other_thread = 99;
  std::thread other([&] { seen_in_other_thread = Journal::ActiveSpanId(); });
  other.join();
  EXPECT_EQ(seen_in_other_thread, 0u);
  Journal::SetActiveSpanId(0);
}

TEST_F(JournalTest, DisabledJournalDropsAppends) {
  Journal::SetEnabled(false);
  EXPECT_FALSE(Journal::Enabled());
  Journal::Append(JournalEventKind::kLog, 1, "dropped");
  EXPECT_EQ(Journal::total_events(), 0u);
  Journal::SetEnabled(true);
  Journal::Append(JournalEventKind::kLog, 1, "kept");
  EXPECT_EQ(Journal::total_events(), 1u);
}

TEST_F(JournalTest, AppendfTruncatesOverlongText) {
  const std::string longer(2 * kJournalTextCapacity, 'y');
  Journal::Appendf(JournalEventKind::kLog, 0, "%s", longer.c_str());
  const std::vector<JournalEvent> merged = Journal::SnapshotMerged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(std::strlen(merged[0].text), kJournalTextCapacity - 1);
}

TEST_F(JournalTest, CrashCauseIsStoredAndTruncated) {
  EXPECT_STREQ(Journal::crash_cause(), "");
  Journal::SetCrashCause("Check failed: invariant");
  EXPECT_STREQ(Journal::crash_cause(), "Check failed: invariant");
  const std::string longer(1024, 'z');
  Journal::SetCrashCause(longer.c_str());
  EXPECT_LT(std::strlen(Journal::crash_cause()), 1024u);
  EXPECT_GT(std::strlen(Journal::crash_cause()), 0u);
}

struct HookCapture {
  static int last_kind;
  static std::string last_detail;
  static void Hook(int kind, const char* detail) {
    last_kind = kind;
    last_detail = detail;
  }
};
int HookCapture::last_kind = -1;
std::string HookCapture::last_detail;

TEST_F(JournalTest, NotifyInterruptJournalsAndInvokesHook) {
  JournalInterruptHook previous = Journal::SetInterruptHook(&HookCapture::Hook);
  Journal::NotifyInterrupt(2, "run deadline exceeded");
  Journal::SetInterruptHook(previous);

  EXPECT_EQ(HookCapture::last_kind, 2);
  EXPECT_EQ(HookCapture::last_detail, "run deadline exceeded");
  const std::vector<JournalEvent> merged = Journal::SnapshotMerged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, JournalEventKind::kInterrupt);
  EXPECT_STREQ(merged[0].text, "run deadline exceeded");
}

TEST_F(JournalTest, NotifyInterruptWithoutHookStillJournals) {
  JournalInterruptHook previous = Journal::SetInterruptHook(nullptr);
  Journal::NotifyInterrupt(1, "run cancelled via CancellationToken");
  Journal::SetInterruptHook(previous);
  EXPECT_EQ(Journal::total_events(), 1u);
}

TEST_F(JournalTest, RawThreadViewsCoverTheStaticArena) {
  Journal::SetThreadLabel("raw-reader");
  Journal::Append(JournalEventKind::kLog, 1, "raw");
  JournalRawThreadView views[kJournalMaxThreads];
  const size_t count = Journal::ReadRawThreads(views, kJournalMaxThreads);
  ASSERT_GE(count, 1u);
  bool found = false;
  for (size_t i = 0; i < count; ++i) {
    ASSERT_NE(views[i].ring, nullptr);
    EXPECT_EQ(views[i].capacity, kJournalEventsPerThread);
    if (views[i].live && std::strcmp(views[i].label, "raw-reader") == 0) {
      found = true;
      EXPECT_EQ(views[i].total_appends, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(JournalTest, ConcurrentAppendersAreAllRetained) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;  // < ring capacity: nothing is evicted
  std::vector<std::thread> workers;
  std::atomic<int> go{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&go, t] {
      go.fetch_add(1);
      while (go.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        Journal::Appendf(JournalEventKind::kTask, 0, "worker %d event %d", t,
                         i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Journal::total_events(),
            static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<JournalEvent> merged = Journal::SnapshotMerged();
  EXPECT_EQ(merged.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].seq, merged[i].seq);
  }
  EXPECT_EQ(Journal::dropped_thread_events(), 0u);
}

TEST_F(JournalTest, DeadThreadRingsSurviveForThePostmortem) {
  // Sequentially-exiting threads must not recycle (and wipe) each other's
  // rings while virgin slots remain — the postmortem wants dead workers'
  // history.
  for (int t = 0; t < 3; ++t) {
    std::thread worker([t] {
      Journal::Appendf(JournalEventKind::kTask, 0, "short-lived %d", t);
    });
    worker.join();
  }
  const std::vector<JournalEvent> merged = Journal::SnapshotMerged();
  ASSERT_EQ(merged.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(std::string(merged[static_cast<size_t>(t)].text),
              "short-lived " + std::to_string(t));
  }
}

TEST_F(JournalTest, EventKindNamesAreStable) {
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kLog), "log");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kSpanBegin),
               "span_begin");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kSpanEnd), "span_end");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kFault), "fault");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kInterrupt),
               "interrupt");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kTask), "task");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kPhase), "phase");
  EXPECT_STREQ(JournalEventKindName(JournalEventKind::kCheckFail),
               "check_fail");
}

}  // namespace
}  // namespace obs
}  // namespace srp
