// Deterministic corruption fuzzing for the crash-recovery readers
// (DESIGN.md §13): every truncation point and every single-bit flip of a
// valid checkpoint file must be REJECTED with a clean Status — never a
// crash, never a silently wrong accept — and the postmortem JSON validator
// must survive the same treatment. CRC32 detects all single-bit errors, so
// "every flip rejected" is a provable property, not a statistical hope; the
// corpus is seeded (no wall-clock, no entropy) and replays identically.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/repartitioner.h"
#include "fail/cancellation.h"
#include "fail/checkpoint.h"
#include "grid/grid_dataset.h"
#include "obs/flight_recorder.h"
#include "obs/journal.h"
#include "util/json.h"
#include "util/logging.h"

namespace srp {
namespace {

/// Same varied fixture as checkpoint_test.cc — enough structure for a
/// genuine multi-iteration snapshot.
GridDataset BumpyGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0,
            100.0 + static_cast<double>((r * 31 + c * 17 + (r * c) % 7) % 23));
    }
  }
  return g;
}

/// CheckpointSink keeping the snapshots, to source a genuine mid-run state.
class RecordingSink : public CheckpointSink {
 public:
  Status OnCheckpoint(const RepartitionCheckpoint& state,
                      SnapshotReason) override {
    snapshots.push_back(state);
    return Status::OK();
  }
  std::vector<RepartitionCheckpoint> snapshots;
};

/// Bytes of a freshly written, valid checkpoint file. Built once per suite:
/// the corpus mutates copies of this buffer.
const std::string& ValidCheckpointBytes() {
  static const std::string* bytes = [] {
    const GridDataset grid = BumpyGrid(6, 6);
    RecordingSink sink;
    RepartitionOptions options;
    options.ifl_threshold = 0.1;
    options.num_threads = 1;
    options.checkpoint = &sink;
    options.checkpoint_every = 1;
    auto result = Repartitioner(options).Run(grid);
    SRP_CHECK(result.ok()) << result.status().ToString();
    SRP_CHECK(!sink.snapshots.empty());

    StoredCheckpoint stored;
    stored.state = sink.snapshots[sink.snapshots.size() / 2];
    stored.grid_fingerprint = GridFingerprint(grid);
    stored.options_fingerprint = OptionsFingerprint(options);
    const std::string path =
        testing::TempDir() + "/ckpt_fuzz_seed.srpckpt";
    SRP_CHECK(WriteCheckpointFile(path, stored).ok());
    std::ifstream in(path, std::ios::binary);
    std::string* out = new std::string(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    SRP_CHECK(!out->empty());
    return out;
  }();
  return *bytes;
}

/// Writes `bytes` to a scratch path and parses it.
Result<StoredCheckpoint> ParseBytes(const std::string& bytes) {
  const std::string path = testing::TempDir() + "/ckpt_fuzz_case.srpckpt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  return ReadCheckpointFile(path);
}

TEST(CheckpointFuzzTest, TheUncorruptedSeedParses) {
  ASSERT_TRUE(ParseBytes(ValidCheckpointBytes()).ok());
}

TEST(CheckpointFuzzTest, EveryTruncationPointIsRejectedCleanly) {
  const std::string& seed = ValidCheckpointBytes();
  for (size_t len = 0; len < seed.size(); ++len) {
    const auto parsed = ParseBytes(seed.substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "accepted a " << len << "-byte prefix of a "
                              << seed.size() << "-byte checkpoint";
  }
}

TEST(CheckpointFuzzTest, EverySingleBitFlipIsRejectedCleanly) {
  const std::string& seed = ValidCheckpointBytes();
  std::string mutated = seed;
  for (size_t byte = 0; byte < seed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[byte] = static_cast<char>(seed[byte] ^ (1 << bit));
      const auto parsed = ParseBytes(mutated);
      ASSERT_FALSE(parsed.ok())
          << "accepted flip of bit " << bit << " in byte " << byte;
    }
    mutated[byte] = seed[byte];
  }
}

TEST(CheckpointFuzzTest, TrailingGarbageIsRejected) {
  EXPECT_FALSE(ParseBytes(ValidCheckpointBytes() + "x").ok());
  EXPECT_FALSE(
      ParseBytes(ValidCheckpointBytes() + std::string(64, '\0')).ok());
}

TEST(CheckpointFuzzTest, SeededRandomGarbageNeverCrashesTheReader) {
  // xorshift64: fixed seed, fully reproducible corpus.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 256; ++round) {
    std::string bytes(next() % 2048, '\0');
    for (char& b : bytes) b = static_cast<char>(next() & 0xFF);
    // Half the rounds keep the real magic so the section parser (not just
    // the magic check) sees the garbage.
    if (round % 2 == 0 && bytes.size() >= 8) {
      std::memcpy(bytes.data(), "SRPCKPT1", 8);
    }
    const auto parsed = ParseBytes(bytes);
    EXPECT_FALSE(parsed.ok()) << "round " << round;
  }
}

TEST(CheckpointFuzzTest, PostmortemCheckpointSectionIsValidated) {
  obs::Journal::ResetForTesting();
  obs::Journal::SetCheckpointGeneration(7);
  const JsonValue good = obs::FlightRecorder::BuildInterruptPostmortem(
      static_cast<int>(InterruptKind::kDeadlineExceeded), "fuzz seed");
  obs::Journal::ResetForTesting();
  ASSERT_TRUE(obs::ValidatePostmortemJson(good).ok())
      << obs::ValidatePostmortemJson(good).ToString();
  ASSERT_NE(good.FindPath("checkpoint.generation"), nullptr);
  EXPECT_EQ(good.FindPath("checkpoint.generation")->number_value(), 7.0);

  // A checkpoint section that is not an object, or one without a numeric
  // generation, must be named as the violation.
  JsonValue not_object = good;
  not_object.Set("checkpoint", JsonValue(std::string("torn")));
  const Status s1 = obs::ValidatePostmortemJson(not_object);
  ASSERT_FALSE(s1.ok());
  EXPECT_NE(s1.message().find("checkpoint"), std::string::npos);

  JsonValue no_generation = good;
  no_generation.Set("checkpoint", JsonValue::Object());
  EXPECT_FALSE(obs::ValidatePostmortemJson(no_generation).ok());

  JsonValue string_generation = good;
  JsonValue ckpt = JsonValue::Object();
  ckpt.Set("generation", JsonValue(std::string("seven")));
  string_generation.Set("checkpoint", ckpt);
  EXPECT_FALSE(obs::ValidatePostmortemJson(string_generation).ok());
}

TEST(CheckpointFuzzTest, CorruptedPostmortemTextNeverCrashesTheValidator) {
  obs::Journal::ResetForTesting();
  obs::Journal::SetCheckpointGeneration(3);
  const std::string seed =
      obs::FlightRecorder::BuildInterruptPostmortem(
          static_cast<int>(InterruptKind::kCancelled), "fuzz seed")
          .Dump(2);
  obs::Journal::ResetForTesting();

  // Truncations: whatever still parses as JSON must flow through the
  // validator without crashing (accept or reject, its call).
  for (size_t len = 0; len < seed.size(); len += 7) {
    const auto doc = JsonValue::Parse(seed.substr(0, len));
    if (doc.ok()) (void)obs::ValidatePostmortemJson(*doc);
  }

  // Seeded byte substitutions across the document.
  uint64_t state = 0xDEADBEEFCAFEF00Dull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 512; ++round) {
    std::string mutated = seed;
    mutated[next() % mutated.size()] = static_cast<char>(next() & 0xFF);
    const auto doc = JsonValue::Parse(mutated);
    if (doc.ok()) (void)obs::ValidatePostmortemJson(*doc);
  }
}

}  // namespace
}  // namespace srp
