#include "bench_diff.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_trend.h"
#include "util/json.h"

namespace srp {
namespace benchdiff {
namespace {

ParsedBenchRow MakeRow(const std::string& metric, double value,
                       const std::string& unit, double stddev = 0.0) {
  ParsedBenchRow row;
  row.bench = "fig6";
  row.tier = "small";
  row.threshold = 0.1;
  row.metric = metric;
  row.unit = unit;
  row.value = value;
  row.repeats = 3;
  row.stddev = stddev;
  return row;
}

TEST(BenchDiffTest, DirectionFollowsTheUnit) {
  EXPECT_EQ(DirectionForUnit("s"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionForUnit("bytes"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionForUnit("mae"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionForUnit("ifl"), Direction::kLowerIsBetter);
  EXPECT_EQ(DirectionForUnit("cells/sec"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionForUnit("f1"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionForUnit("pct_correct"), Direction::kHigherIsBetter);
  EXPECT_EQ(DirectionForUnit("groups"), Direction::kInfoOnly);
  EXPECT_EQ(DirectionForUnit("%"), Direction::kInfoOnly);
  EXPECT_EQ(DirectionForUnit(""), Direction::kInfoOnly);
}

TEST(BenchDiffTest, IdenticalRowsPass) {
  const std::vector<ParsedBenchRow> rows = {
      MakeRow("taxi/reduction_time", 1.0, "s"),
      MakeRow("taxi/train/f1", 0.9, "f1"),
      MakeRow("taxi/groups", 120.0, "groups")};
  const DiffReport report = DiffBenchRows(rows, rows, BenchDiffOptions());
  EXPECT_FALSE(report.failed);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.info, 1u);
  EXPECT_EQ(report.info_skipped, 1u);
  EXPECT_EQ(report.regressed, 0u);
  EXPECT_EQ(report.rows.size(), 3u);
}

TEST(BenchDiffTest, InfoSkippedCountsEveryUngatedRow) {
  // Two matched info-unit rows plus one candidate-only info-unit row are all
  // outside the gate; the candidate-only timing row is "new" but gateable,
  // so it does not count as skipped.
  const std::vector<ParsedBenchRow> base = {
      MakeRow("taxi/reduction_time", 1.0, "s"),
      MakeRow("taxi/groups", 120.0, "groups"),
      MakeRow("taxi/share", 40.0, "%")};
  const std::vector<ParsedBenchRow> cand = {
      MakeRow("taxi/reduction_time", 1.0, "s"),
      MakeRow("taxi/groups", 140.0, "groups"),
      MakeRow("taxi/share", 45.0, "%"),
      MakeRow("taxi/cells", 2304.0, "cells"),
      MakeRow("taxi/train_time", 0.5, "s")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_FALSE(report.failed);
  EXPECT_EQ(report.info, 2u);
  EXPECT_EQ(report.added, 2u);
  EXPECT_EQ(report.info_skipped, 3u);
}

TEST(BenchDiffTest, RowKeyMatchesOnAllFiveFields) {
  ParsedBenchRow row = MakeRow("taxi/reduction_time", 1.0, "s");
  ParsedBenchRow same = row;
  same.value = 99.0;  // the value is a measurement, not part of the key
  EXPECT_EQ(BenchRowKey(row), BenchRowKey(same));
  ParsedBenchRow other_tier = row;
  other_tier.tier = "large";
  EXPECT_NE(BenchRowKey(row), BenchRowKey(other_tier));
  ParsedBenchRow reparsed = row;
  reparsed.threshold = row.threshold + 1e-10;  // survives a JSON round trip
  EXPECT_EQ(BenchRowKey(row), BenchRowKey(reparsed));
}

TEST(BenchDiffTest, TwoTimesSlowdownRegresses) {
  const auto base = {MakeRow("taxi/reduction_time", 1.0, "s")};
  const auto cand = {MakeRow("taxi/reduction_time", 2.0, "s")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kRegressed);
  EXPECT_NEAR(report.rows[0].delta_pct, 100.0, 1e-9);
  EXPECT_TRUE(report.failed);
}

TEST(BenchDiffTest, JitterWithinRelativeToleranceIsOk) {
  const auto base = {MakeRow("taxi/reduction_time", 1.0, "s")};
  const auto cand = {MakeRow("taxi/reduction_time", 1.2, "s")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kOk);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, RecordedStddevWidensTheGate) {
  // +80% would trip the 25% relative gate, but the baseline itself is noisy:
  // 2 x stddev(0.05) = 0.1 > the 0.08 delta.
  const auto base = {MakeRow("taxi/reduction_time", 0.1, "s", 0.05)};
  const auto cand = {MakeRow("taxi/reduction_time", 0.18, "s", 0.0)};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kOk);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, MicroTimingsAreShieldedByTheAbsoluteFloor) {
  // +100% on a 2ms row stays under the 5ms absolute floor.
  const auto base = {MakeRow("taxi/reduction_time", 0.002, "s")};
  const auto cand = {MakeRow("taxi/reduction_time", 0.004, "s")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kOk);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, ImprovementIsReportedAndPasses) {
  const auto base = {MakeRow("taxi/reduction_time", 2.0, "s")};
  const auto cand = {MakeRow("taxi/reduction_time", 1.0, "s")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kImproved);
  EXPECT_EQ(report.improved, 1u);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, ThroughputDropRegresses) {
  const auto base = {MakeRow("extract/cells_per_sec", 1000.0, "cells/sec")};
  const auto cand = {MakeRow("extract/cells_per_sec", 500.0, "cells/sec")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kRegressed);
  EXPECT_TRUE(report.failed);
}

TEST(BenchDiffTest, ThroughputGainIsAnImprovement) {
  const auto base = {MakeRow("extract/cells_per_sec", 500.0, "cells/sec")};
  const auto cand = {MakeRow("extract/cells_per_sec", 1000.0, "cells/sec")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kImproved);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, MissingBaselineRowFailsByDefault) {
  const auto base = {MakeRow("taxi/reduction_time", 1.0, "s"),
                     MakeRow("taxi/train/f1", 0.9, "f1")};
  const auto cand = {MakeRow("taxi/reduction_time", 1.0, "s")};
  DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.missing, 1u);
  EXPECT_TRUE(report.failed);

  BenchDiffOptions lenient;
  lenient.fail_on_missing = false;
  report = DiffBenchRows(base, cand, lenient);
  EXPECT_EQ(report.missing, 1u);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, CandidateOnlyRowsNeverFail) {
  const auto base = {MakeRow("taxi/reduction_time", 1.0, "s")};
  const auto cand = {MakeRow("taxi/reduction_time", 1.0, "s"),
                     MakeRow("taxi/new_metric", 5.0, "s")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.added, 1u);
  EXPECT_FALSE(report.failed);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[1].verdict, RowVerdict::kNew);
}

TEST(BenchDiffTest, InfoUnitsNeverGateHoweverLargeTheDelta) {
  const auto base = {MakeRow("taxi/groups", 10.0, "groups")};
  const auto cand = {MakeRow("taxi/groups", 1000.0, "groups")};
  const DiffReport report = DiffBenchRows(base, cand, BenchDiffOptions());
  EXPECT_EQ(report.rows[0].verdict, RowVerdict::kInfo);
  EXPECT_FALSE(report.failed);
}

TEST(BenchDiffTest, RowsAreMatchedByFullKeyNotJustMetric) {
  auto base_row = MakeRow("taxi/reduction_time", 1.0, "s");
  auto cand_row = base_row;
  cand_row.tier = "medium";  // different tier → no match
  const DiffReport report =
      DiffBenchRows({base_row}, {cand_row}, BenchDiffOptions());
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.added, 1u);
}

TEST(BenchDiffTest, RowsFromBenchJsonReadsTheSchema) {
  auto doc = JsonValue::Parse(R"({
    "schema_version": 1,
    "bench": "fig6",
    "rows": [
      {"bench": "fig6", "tier": "small", "threshold": 0.1,
       "metric": "taxi/reduction_time", "value": 0.5, "unit": "s",
       "repeats": 3, "stddev": 0.01}
    ],
    "run_report": {}
  })");
  ASSERT_TRUE(doc.ok());
  auto rows = RowsFromBenchJson(*doc);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->front().metric, "taxi/reduction_time");
  EXPECT_EQ(rows->front().repeats, 3);
  EXPECT_DOUBLE_EQ(rows->front().stddev, 0.01);
}

TEST(BenchDiffTest, RowsFromBenchJsonRejectsMissingSchemaVersion) {
  auto doc = JsonValue::Parse(R"({"rows": []})");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(RowsFromBenchJson(*doc).ok());
}

TEST(BenchDiffTest, LoadBenchRowsReadsAFileAndADirectory) {
  const std::string dir = testing::TempDir() + "/bench_diff_load";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  const auto write = [&](const std::string& name, const std::string& metric) {
    std::ofstream out(dir + "/" + name);
    out << R"({"schema_version": 1, "bench": "b", "rows": [{"bench": "b",)"
        << R"( "tier": "t", "threshold": 0, "metric": ")" << metric
        << R"(", "value": 1, "unit": "s"}]})";
  };
  write("BENCH_b.json", "m1");
  write("BENCH_a.json", "m0");
  write("not_a_bench.json", "ignored");

  auto single = LoadBenchRows(dir + "/BENCH_a.json");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->size(), 1u);

  auto both = LoadBenchRows(dir);
  ASSERT_TRUE(both.ok()) << both.status().ToString();
  ASSERT_EQ(both->size(), 2u);
  // Sorted by filename: BENCH_a before BENCH_b.
  EXPECT_EQ(both->at(0).metric, "m0");
  EXPECT_EQ(both->at(1).metric, "m1");

  EXPECT_FALSE(LoadBenchRows(dir + "/absent.json").ok());
}

TEST(BenchTrendTest, MergesRunsByRowKeyInFirstSeenOrder) {
  const std::vector<TrendRun> runs = {
      {"r1",
       {MakeRow("taxi/reduction_time", 1.0, "s"),
        MakeRow("taxi/groups", 120.0, "groups")}},
      {"r2",
       {MakeRow("taxi/reduction_time", 1.1, "s"),
        MakeRow("taxi/train/f1", 0.9, "f1")}},
  };
  const TrendTable table = BuildTrendTable(runs);
  ASSERT_EQ(table.run_labels, (std::vector<std::string>{"r1", "r2"}));
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[0].metric, "taxi/reduction_time");
  EXPECT_EQ(table.rows[0].values, (std::vector<double>{1.0, 1.1}));
  EXPECT_EQ(table.rows[0].present, (std::vector<bool>{true, true}));
  // Rows missing from a run stay visible with an absent cell.
  EXPECT_EQ(table.rows[1].metric, "taxi/groups");
  EXPECT_EQ(table.rows[1].present, (std::vector<bool>{true, false}));
  EXPECT_EQ(table.rows[2].metric, "taxi/train/f1");
  EXPECT_EQ(table.rows[2].present, (std::vector<bool>{false, true}));
}

TEST(BenchTrendTest, MarkdownHasHeaderRulerAndDelta) {
  const std::vector<TrendRun> runs = {
      {"old", {MakeRow("taxi/reduction_time", 1.0, "s")}},
      {"new", {MakeRow("taxi/reduction_time", 1.5, "s")}},
  };
  const TrendTable table = BuildTrendTable(runs);

  const std::string path = ::testing::TempDir() + "/trend_test.md";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  PrintTrendMarkdown(table, out);
  std::fclose(out);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "| bench | tier | theta | metric | unit | old | new | delta |");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "| --- | --- | --- | --- | --- | ---: | ---: | ---: |");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("taxi/reduction_time"), std::string::npos);
  EXPECT_NE(line.find("50.0%"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace benchdiff
}  // namespace srp
