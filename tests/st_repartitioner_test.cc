// Tests for the spatio-temporal extension (paper Section VI future work):
// a shared spatial partition over T time slices with per-slice features.

#include "st/st_repartitioner.h"

#include <gtest/gtest.h>

#include "core/information_loss.h"
#include "data/datasets.h"
#include "st/temporal_grid.h"

namespace srp {
namespace {

GridDataset Slice(size_t rows, size_t cols, double base, double step) {
  GridDataset g(rows, cols, {{"v", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, base + step * static_cast<double>(r + c));
    }
  }
  return g;
}

TEST(TemporalGridSeriesTest, AddSliceValidatesConformity) {
  TemporalGridSeries series;
  ASSERT_TRUE(series.AddSlice(Slice(4, 4, 100, 1)).ok());
  EXPECT_EQ(series.num_slices(), 1u);
  // Wrong dimensions.
  EXPECT_FALSE(series.AddSlice(Slice(4, 5, 100, 1)).ok());
  // Wrong schema (different attribute name).
  GridDataset other(4, 4, {{"w", AggType::kAverage, false}});
  other.Set(0, 0, 0, 1.0);
  EXPECT_FALSE(series.AddSlice(other).ok());
  ASSERT_TRUE(series.AddSlice(Slice(4, 4, 200, 2)).ok());
  EXPECT_EQ(series.num_slices(), 2u);
}

TEST(TemporalGridSeriesTest, NullProfileHelpers) {
  TemporalGridSeries series;
  GridDataset a(1, 3, {{"v", AggType::kAverage, false}});
  a.Set(0, 0, 0, 1.0);
  a.Set(0, 1, 0, 2.0);
  GridDataset b(1, 3, {{"v", AggType::kAverage, false}});
  b.Set(0, 0, 0, 3.0);
  b.Set(0, 2, 0, 4.0);
  ASSERT_TRUE(series.AddSlice(a).ok());
  ASSERT_TRUE(series.AddSlice(b).ok());
  // Cell (0,0): valid in both; (0,1): valid only in a; (0,2): only in b.
  EXPECT_FALSE(series.IsAlwaysNull(0, 0));
  EXPECT_FALSE(series.IsAlwaysNull(0, 1));
  EXPECT_TRUE(series.SameNullProfile(0, 0, 0, 0));
  EXPECT_FALSE(series.SameNullProfile(0, 0, 0, 1));
  EXPECT_FALSE(series.SameNullProfile(0, 1, 0, 2));
}

TEST(StRepartitionerTest, SharedPartitionRespectsMeanLoss) {
  TemporalGridSeries series;
  ASSERT_TRUE(series.AddSlice(Slice(10, 10, 100, 1)).ok());
  ASSERT_TRUE(series.AddSlice(Slice(10, 10, 120, 1)).ok());
  ASSERT_TRUE(series.AddSlice(Slice(10, 10, 140, 1)).ok());
  StRepartitionOptions options;
  options.ifl_threshold = 0.05;
  auto result = StRepartitioner(options).Run(series);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->information_loss, 0.05);
  EXPECT_EQ(result->per_slice_loss.size(), 3u);
  EXPECT_EQ(result->slice_features.size(), 3u);
  EXPECT_LT(result->partition.num_groups(), 100u);
  // One shared partition: every slice has features for every group.
  for (const auto& features : result->slice_features) {
    EXPECT_EQ(features.size(), result->partition.num_groups());
  }
}

TEST(StRepartitionerTest, MaxAggregationBlocksTransientDivergence) {
  // Slices agree except at time 1, where the right half spikes. Under kMax,
  // cells across the spike boundary must not merge even though they are
  // identical in slices 0 and 2.
  TemporalGridSeries series;
  GridDataset flat(4, 4, {{"v", AggType::kAverage, false}});
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) flat.Set(r, c, 0, 10.0);
  }
  GridDataset spike = flat;
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 2; c < 4; ++c) spike.Set(r, c, 0, 1000.0);
  }
  ASSERT_TRUE(series.AddSlice(flat).ok());
  ASSERT_TRUE(series.AddSlice(spike).ok());
  ASSERT_TRUE(series.AddSlice(flat).ok());

  StRepartitionOptions options;
  options.ifl_threshold = 0.02;
  options.aggregation = TemporalAggregation::kMax;
  auto result = StRepartitioner(options).Run(series);
  ASSERT_TRUE(result.ok());
  const Partition& p = result->partition;
  EXPECT_NE(p.GroupOf(0, 1), p.GroupOf(0, 2));  // spike boundary preserved
  EXPECT_EQ(p.GroupOf(0, 0), p.GroupOf(3, 1));  // left block merged
  EXPECT_EQ(p.GroupOf(0, 2), p.GroupOf(3, 3));  // right block merged
}

TEST(StRepartitionerTest, MeanAggregationIsMorePermissive) {
  // Same spike world, but the per-slice mean dilutes the time-1 divergence.
  TemporalGridSeries series;
  GridDataset flat(4, 4, {{"v", AggType::kAverage, false}});
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) flat.Set(r, c, 0, 10.0);
  }
  GridDataset bump = flat;
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 2; c < 4; ++c) bump.Set(r, c, 0, 12.0);
  }
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(series.AddSlice(flat).ok());
  ASSERT_TRUE(series.AddSlice(bump).ok());

  StRepartitionOptions mean_options;
  mean_options.ifl_threshold = 0.1;
  mean_options.aggregation = TemporalAggregation::kMean;
  auto mean_result = StRepartitioner(mean_options).Run(series);
  ASSERT_TRUE(mean_result.ok());

  StRepartitionOptions max_options = mean_options;
  max_options.aggregation = TemporalAggregation::kMax;
  auto max_result = StRepartitioner(max_options).Run(series);
  ASSERT_TRUE(max_result.ok());

  EXPECT_LE(mean_result->partition.num_groups(),
            max_result->partition.num_groups());
}

TEST(StRepartitionerTest, MixedNullProfilesNeverMerge) {
  TemporalGridSeries series;
  GridDataset a(1, 3, {{"v", AggType::kAverage, false}});
  a.Set(0, 0, 0, 5.0);
  a.Set(0, 1, 0, 5.0);
  // (0,2) null at t=0.
  GridDataset b(1, 3, {{"v", AggType::kAverage, false}});
  b.Set(0, 0, 0, 5.0);
  b.Set(0, 1, 0, 5.0);
  b.Set(0, 2, 0, 5.0);  // valid at t=1
  ASSERT_TRUE(series.AddSlice(a).ok());
  ASSERT_TRUE(series.AddSlice(b).ok());
  StRepartitionOptions options;
  options.ifl_threshold = 0.5;
  auto result = StRepartitioner(options).Run(series);
  ASSERT_TRUE(result.ok());
  const Partition& p = result->partition;
  EXPECT_EQ(p.GroupOf(0, 0), p.GroupOf(0, 1));
  EXPECT_NE(p.GroupOf(0, 1), p.GroupOf(0, 2));
}

TEST(StRepartitionerTest, SingleSliceMatchesSpatialFramework) {
  DatasetOptions data_options;
  data_options.rows = 16;
  data_options.cols = 16;
  data_options.seed = 55;
  auto grid = GenerateDataset(DatasetKind::kVehiclesUni, data_options);
  ASSERT_TRUE(grid.ok());
  TemporalGridSeries series;
  ASSERT_TRUE(series.AddSlice(*grid).ok());
  StRepartitionOptions options;
  options.ifl_threshold = 0.1;
  auto st = StRepartitioner(options).Run(series);
  ASSERT_TRUE(st.ok());
  EXPECT_LE(st->information_loss, 0.1);
  EXPECT_NEAR(InformationLoss(*grid, st->partition), st->information_loss,
              1e-12);
}

TEST(StRepartitionerTest, RejectsEmptySeriesAndBadThreshold) {
  TemporalGridSeries empty;
  EXPECT_FALSE(StRepartitioner().Run(empty).ok());
  TemporalGridSeries series;
  ASSERT_TRUE(series.AddSlice(Slice(3, 3, 1, 1)).ok());
  StRepartitionOptions options;
  options.ifl_threshold = 2.0;
  EXPECT_FALSE(StRepartitioner(options).Run(series).ok());
}

}  // namespace
}  // namespace srp
