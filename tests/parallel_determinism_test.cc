// Determinism contract of the parallel subsystem (DESIGN.md §7): every
// parallelized computation must produce bit-identical results for any
// num_threads setting, including the sequential num_threads=1 path. These
// tests run the re-partitioning core, the homogeneous variant and the model
// zoo at num_threads ∈ {1, 2, 8} and compare outputs with exact equality —
// EXPECT_EQ on doubles, never EXPECT_NEAR.

#include <vector>

#include <gtest/gtest.h>

#include "core/homogeneous.h"
#include "core/repartitioner.h"
#include "data/datasets.h"
#include "ml/gwr.h"
#include "ml/knn.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace srp {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

GridDataset TestGrid(DatasetKind kind, uint64_t seed) {
  DatasetOptions options;
  options.rows = 40;
  options.cols = 40;
  options.seed = seed;
  auto grid = GenerateDataset(kind, options);
  EXPECT_TRUE(grid.ok()) << grid.status().ToString();
  return std::move(grid).value();
}

void ExpectIdenticalPartitions(const Partition& a, const Partition& b,
                               size_t threads) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << threads << " threads";
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_TRUE(a.groups[g] == b.groups[g]) << "group " << g;
  }
  EXPECT_EQ(a.cell_to_group, b.cell_to_group) << threads << " threads";
  EXPECT_EQ(a.group_null, b.group_null) << threads << " threads";
  EXPECT_EQ(a.group_valid_count, b.group_valid_count) << threads << " threads";
  ASSERT_EQ(a.features.size(), b.features.size()) << threads << " threads";
  for (size_t g = 0; g < a.features.size(); ++g) {
    // operator== on the vectors compares every double bit-exactly.
    EXPECT_EQ(a.features[g], b.features[g]) << "group " << g << " features";
  }
}

TEST(ParallelDeterminismTest, RepartitionerRunIsThreadCountInvariant) {
  for (DatasetKind kind :
       {DatasetKind::kHomeSalesMulti, DatasetKind::kTaxiTripUni}) {
    const GridDataset grid = TestGrid(kind, 2022);
    RepartitionOptions options;
    options.ifl_threshold = 0.1;
    options.min_variation_step = 2.5e-3;

    options.num_threads = 1;
    auto baseline = Repartitioner(options).Run(grid);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    for (size_t threads : kThreadCounts) {
      options.num_threads = threads;
      auto run = Repartitioner(options).Run(grid);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run->iterations, baseline->iterations) << threads;
      EXPECT_EQ(run->information_loss, baseline->information_loss) << threads;
      EXPECT_EQ(run->final_min_adjacent_variation,
                baseline->final_min_adjacent_variation)
          << threads;
      ExpectIdenticalPartitions(run->partition, baseline->partition, threads);
    }
  }
}

TEST(ParallelDeterminismTest, HomogeneousRepartitionIsThreadCountInvariant) {
  const GridDataset grid = TestGrid(DatasetKind::kEarningsMulti, 7);
  auto baseline = HomogeneousRepartition(grid, 0.15, /*num_threads=*/1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : kThreadCounts) {
    auto run = HomogeneousRepartition(grid, 0.15, threads);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->merge_factor, baseline->merge_factor) << threads;
    EXPECT_EQ(run->information_loss, baseline->information_loss) << threads;
    ExpectIdenticalPartitions(run->partition, baseline->partition, threads);
  }
}

/// Noisy nonlinear regression data with enough rows for real tree splits.
void MakeRegressionData(size_t n, uint64_t seed, Matrix* x,
                        std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(-2.0, 2.0);
    const double b = rng.Uniform(-2.0, 2.0);
    const double c = rng.Uniform(-2.0, 2.0);
    (*x)(i, 0) = a;
    (*x)(i, 1) = b;
    (*x)(i, 2) = c;
    (*y)[i] = a * a - 3.0 * b + (c > 0 ? 2.0 : -1.0) + rng.Normal(0.0, 0.1);
  }
}

TEST(ParallelDeterminismTest, RandomForestFitPredictIsThreadCountInvariant) {
  Matrix x;
  std::vector<double> y;
  MakeRegressionData(400, 99, &x, &y);

  RandomForestRegression::Options options;
  options.n_estimators = 24;
  options.max_depth = 5;
  options.min_samples_leaf = 5;
  options.seed = 13;

  options.num_threads = 1;
  RandomForestRegression sequential(options);
  ASSERT_TRUE(sequential.Fit(x, y).ok());
  const std::vector<double> expected = sequential.Predict(x);

  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    RandomForestRegression forest(options);
    ASSERT_TRUE(forest.Fit(x, y).ok());
    EXPECT_EQ(forest.num_trees(), options.n_estimators);
    EXPECT_EQ(forest.Predict(x), expected) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, KnnPredictIsThreadCountInvariant) {
  Rng rng(5);
  const size_t n = 300;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-1.0, 1.0);
    x(i, 1) = rng.Uniform(-1.0, 1.0);
    labels[i] = (x(i, 0) + x(i, 1) > 0) ? 1 : 0;
  }

  KnnClassifier::Options options;
  options.num_threads = 1;
  KnnClassifier sequential(options);
  ASSERT_TRUE(sequential.Fit(x, labels, /*num_classes=*/2).ok());
  const std::vector<int> expected = sequential.Predict(x);

  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    KnnClassifier knn(options);
    ASSERT_TRUE(knn.Fit(x, labels, /*num_classes=*/2).ok());
    EXPECT_EQ(knn.Predict(x), expected) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, GwrPredictIsThreadCountInvariant) {
  Rng rng(21);
  const size_t n = 120;
  MlDataset data;
  data.features = Matrix(n, 2);
  data.target.resize(n);
  data.coords.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double lat = rng.Uniform(0.0, 10.0);
    const double lon = rng.Uniform(0.0, 10.0);
    data.coords[i] = {lat, lon};
    data.features(i, 0) = rng.Uniform(-1.0, 1.0);
    data.features(i, 1) = rng.Uniform(-1.0, 1.0);
    data.target[i] = 0.3 * lat + data.features(i, 0) -
                     2.0 * data.features(i, 1) + rng.Normal(0.0, 0.05);
  }

  GeographicallyWeightedRegression::Options options;
  options.num_threads = 1;
  GeographicallyWeightedRegression sequential(options);
  ASSERT_TRUE(sequential.Fit(data).ok());
  auto expected = sequential.Predict(data);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    GeographicallyWeightedRegression gwr(options);
    ASSERT_TRUE(gwr.Fit(data).ok());
    EXPECT_EQ(gwr.bandwidth_neighbors(), sequential.bandwidth_neighbors());
    auto predicted = gwr.Predict(data);
    ASSERT_TRUE(predicted.ok()) << predicted.status().ToString();
    EXPECT_EQ(*predicted, *expected) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  // Run-to-run stability at a fixed thread count: the scheduler must not be
  // able to influence the result, so three runs with an 8-thread pool on a
  // 1-core machine (maximal interleaving pressure) must agree bit-exactly.
  const GridDataset grid = TestGrid(DatasetKind::kVehiclesUni, 31);
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.min_variation_step = 2.5e-3;
  options.num_threads = 8;
  const Repartitioner repartitioner(options);

  auto first = repartitioner.Run(grid);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int repeat = 0; repeat < 2; ++repeat) {
    auto run = repartitioner.Run(grid);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->information_loss, first->information_loss);
    ExpectIdenticalPartitions(run->partition, first->partition, 8);
  }
}

}  // namespace
}  // namespace srp
