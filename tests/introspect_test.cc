// Tests of the algorithm-introspection channel (DESIGN.md §10): the
// RecordingIntrospectionSink's series must mirror the algorithms exactly —
// one IFL entry per evaluated candidate, strictly increasing heap-top
// variations, a fully accounted variation histogram — and, because every
// callback fires on the driver thread in algorithm order, the whole record
// must be bit-identical for any thread count (the determinism contract of
// DESIGN.md §7 extends to introspection).

#include "obs/introspect.h"

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/homogeneous.h"
#include "core/repartitioner.h"
#include "data/datasets.h"
#include "util/json.h"

namespace srp {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

GridDataset TestGrid(DatasetKind kind, uint64_t seed) {
  DatasetOptions options;
  options.rows = 40;
  options.cols = 40;
  options.seed = seed;
  auto grid = GenerateDataset(kind, options);
  EXPECT_TRUE(grid.ok()) << grid.status().ToString();
  return std::move(grid).value();
}

struct RecordedRun {
  obs::IntrospectionRecord record;
  RepartitionResult result;
};

RecordedRun RunWithSink(const GridDataset& grid, size_t num_threads) {
  obs::RecordingIntrospectionSink sink;
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.min_variation_step = 2.5e-3;
  options.num_threads = num_threads;
  options.introspection = &sink;
  auto result = Repartitioner(options).Run(grid);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return RecordedRun{sink.record(), std::move(result).value()};
}

TEST(IntrospectTest, SeriesMirrorTheRun) {
  const GridDataset grid = TestGrid(DatasetKind::kHomeSalesMulti, 2022);
  const RecordedRun run = RunWithSink(grid, 1);
  const obs::IntrospectionRecord& record = run.record;

  // One IFL entry per evaluated candidate: every accepted iteration plus at
  // most the final rejected one.
  ASSERT_FALSE(record.ifl_series.empty());
  ASSERT_EQ(record.ifl_series.size(), record.ifl_accepted.size());
  size_t accepted = 0;
  for (bool a : record.ifl_accepted) accepted += a ? 1 : 0;
  EXPECT_EQ(accepted, run.result.iterations);
  EXPECT_LE(record.ifl_series.size(), run.result.iterations + 1);

  // Coarsening only loses information: the IFL series never decreases, and
  // the last accepted entry is the run's final information loss.
  for (size_t i = 1; i < record.ifl_series.size(); ++i) {
    EXPECT_GE(record.ifl_series[i], record.ifl_series[i - 1]) << "index " << i;
  }
  for (size_t i = record.ifl_series.size(); i-- > 0;) {
    if (record.ifl_accepted[i]) {
      EXPECT_EQ(record.ifl_series[i], run.result.information_loss);
      break;
    }
  }

  // The heap hands out each iteration's variation in strictly increasing
  // order; the last accepted pop is the run's final variation threshold.
  ASSERT_EQ(record.variation_series.size(), record.ifl_series.size());
  for (size_t i = 1; i < record.variation_series.size(); ++i) {
    EXPECT_GT(record.variation_series[i], record.variation_series[i - 1])
        << "index " << i;
  }

  // Every candidate-pair variation lands in exactly one bucket (or the
  // overflow counter), so the histogram fully accounts for the count.
  EXPECT_GT(record.variation_count, 0);
  const int64_t bucketed =
      std::accumulate(record.variation_histogram.begin(),
                      record.variation_histogram.end(), int64_t{0});
  EXPECT_EQ(bucketed + record.variation_overflow, record.variation_count);
  EXPECT_EQ(record.variation_histogram.size(),
            obs::kVariationHistogramBuckets);

  // Repartitioner runs never produce homogeneous merge rounds.
  EXPECT_TRUE(record.merge_rounds.empty());
}

TEST(IntrospectTest, RecordIsBitIdenticalAcrossThreadCounts) {
  const GridDataset grid = TestGrid(DatasetKind::kHomeSalesMulti, 2022);
  const RecordedRun baseline = RunWithSink(grid, 1);
  const JsonValue expected = baseline.record.ToJson();
  for (size_t threads : kThreadCounts) {
    const RecordedRun run = RunWithSink(grid, threads);
    EXPECT_EQ(run.record.ToJson(), expected) << threads << " threads";
  }
}

TEST(IntrospectTest, HomogeneousDriverRecordsMergeRounds) {
  const GridDataset grid = TestGrid(DatasetKind::kEarningsMulti, 7);
  obs::RecordingIntrospectionSink sink;
  auto result = HomogeneousRepartition(grid, 0.15, /*num_threads=*/1,
                                       /*ctx=*/nullptr, &sink);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const obs::IntrospectionRecord& record = sink.record();

  ASSERT_FALSE(record.merge_rounds.empty());
  // Factors are tried in order starting at 2x2.
  for (size_t i = 0; i < record.merge_rounds.size(); ++i) {
    EXPECT_EQ(record.merge_rounds[i].factor, i + 2);
    EXPECT_EQ(record.merge_rounds[i].accepted,
              record.merge_rounds[i].information_loss <= 0.15);
  }
  // The last accepted round is the returned partition.
  for (size_t i = record.merge_rounds.size(); i-- > 0;) {
    if (record.merge_rounds[i].accepted) {
      EXPECT_EQ(record.merge_rounds[i].information_loss,
                result->information_loss);
      EXPECT_EQ(record.merge_rounds[i].factor, result->merge_factor);
      break;
    }
  }
  // The other channels stay quiet for the homogeneous driver.
  EXPECT_TRUE(record.ifl_series.empty());
  EXPECT_TRUE(record.variation_series.empty());

  // And the rounds are thread-count invariant like everything else.
  for (size_t threads : kThreadCounts) {
    obs::RecordingIntrospectionSink threaded;
    auto run = HomogeneousRepartition(grid, 0.15, threads, nullptr, &threaded);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(threaded.record().ToJson(), record.ToJson())
        << threads << " threads";
  }
}

TEST(IntrospectTest, HistogramBucketsValuesAndSkipsNonFinite) {
  obs::RecordingIntrospectionSink sink;
  const double values[] = {0.0,  0.049, 0.05, 0.999, 1.0, 1.5, -0.25,
                           2e30, std::nan(""), std::numeric_limits<double>::infinity()};
  sink.OnCandidateVariations(values, sizeof(values) / sizeof(values[0]));
  const obs::IntrospectionRecord& record = sink.record();

  // The two non-finite values are skipped entirely.
  EXPECT_EQ(record.variation_count, 8);
  // 1.5 and 2e30 overflow; -0.25 clamps to bucket 0; 1.0 lands in the last.
  EXPECT_EQ(record.variation_overflow, 2);
  EXPECT_EQ(record.variation_histogram[0], 3);  // 0.0, 0.049, -0.25
  EXPECT_EQ(record.variation_histogram[1], 1);  // 0.05
  EXPECT_EQ(record.variation_histogram[obs::kVariationHistogramBuckets - 1],
            2);  // 0.999, 1.0
}

TEST(IntrospectTest, ToJsonAndCsvCoverEverySeries) {
  obs::RecordingIntrospectionSink sink;
  const double variations[] = {0.1, 0.4};
  sink.OnCandidateVariations(variations, 2);
  sink.OnHeapPop(0.1);
  sink.OnIteration(0, 0.1, 0.01, 100, true);
  sink.OnIteration(1, 0.4, 0.2, 50, false);
  sink.OnMergeRound(2, 0.05, 400, true);

  const JsonValue doc = sink.record().ToJson();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("ifl_series")->size(), 2u);
  EXPECT_EQ(doc.Find("ifl_accepted")->at(1).bool_value(), false);
  EXPECT_EQ(doc.Find("variation_series")->size(), 1u);
  EXPECT_EQ(doc.FindPath("variation_histogram.count")->number_value(), 2.0);
  ASSERT_NE(doc.Find("merge_rounds"), nullptr);
  EXPECT_EQ(doc.Find("merge_rounds")->at(0).Find("factor")->number_value(),
            2.0);

  const std::string path =
      ::testing::TempDir() + "/introspect_test_series.csv";
  ASSERT_TRUE(sink.record().WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("series,index,value,accepted\n"), std::string::npos);
  EXPECT_NE(contents.find("ifl,0,"), std::string::npos);
  EXPECT_NE(contents.find("variation,0,"), std::string::npos);
  EXPECT_NE(contents.find("variation_histogram,0,"), std::string::npos);
  EXPECT_NE(contents.find("merge_round_ifl,2,"), std::string::npos);
}

}  // namespace
}  // namespace srp
