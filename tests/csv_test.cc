#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace srp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string WriteRaw(const std::string& name, const std::string& text) {
  const std::string path = TempPath(name);
  std::ofstream os(path, std::ios::binary);
  os << text;
  return path;
}

TEST(CsvTest, RoundTripSimpleTable) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  table.rows = {{"1", "2", "3"}, {"x", "y", "z"}};
  const std::string path = TempPath("simple.csv");
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->header, table.header);
  EXPECT_EQ(read->rows, table.rows);
}

TEST(CsvTest, QuotingOfSeparatorsAndQuotes) {
  CsvTable table;
  table.header = {"text"};
  table.rows = {{"has,comma"}, {"has\"quote"}, {"plain"}};
  const std::string path = TempPath("quoted.csv");
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows[0][0], "has,comma");
  EXPECT_EQ(read->rows[1][0], "has\"quote");
  EXPECT_EQ(read->rows[2][0], "plain");
}

TEST(CsvTest, ParseCsvLineHandlesQuotedFields) {
  const auto fields = ParseCsvLine("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvTest, ParseCsvLineEmptyFields) {
  const auto fields = ParseCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"alpha", "beta"};
  EXPECT_EQ(table.ColumnIndex("alpha"), 0);
  EXPECT_EQ(table.ColumnIndex("beta"), 1);
  EXPECT_EQ(table.ColumnIndex("gamma"), -1);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = ReadCsv("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_FALSE(WriteCsv(table, "/nonexistent/dir/out.csv").ok());
}

TEST(CsvTest, RoundTripEmbeddedNewlines) {
  CsvTable table;
  table.header = {"text", "n"};
  table.rows = {{"line1\nline2", "1"}, {"a\r\nb", "2"}};
  const std::string path = TempPath("newlines.csv");
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows, table.rows);
}

TEST(CsvTest, AcceptsCrlfLineEndings) {
  const std::string path =
      WriteRaw("crlf.csv", "a,b\r\n1,2\r\n3,4\r\n");
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->rows.size(), 2u);
  EXPECT_EQ(read->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(read->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, AcceptsMissingTrailingNewlineAndBlankLines) {
  const std::string path =
      WriteRaw("no_trailing.csv", "a,b\n\n1,2\n\n\n3,4");
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->rows.size(), 2u);
  EXPECT_EQ(read->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, QuotedEmptyFieldIsNotABlankLine) {
  const std::string path = WriteRaw("quoted_empty.csv", "a\n\"\"\n");
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->rows.size(), 1u);
  EXPECT_EQ(read->rows[0][0], "");
}

TEST(CsvTest, RejectsRaggedRows) {
  const std::string path = WriteRaw("ragged.csv", "a,b,c\n1,2,3\n4,5\n");
  auto read = ReadCsv(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("row 2"), std::string::npos);
  EXPECT_NE(read.status().message().find("expected 3"), std::string::npos);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  const std::string path = WriteRaw("unterminated.csv", "a\n\"oops\n");
  auto read = ReadCsv(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvTest, EmptyFileFails) {
  const std::string path = WriteRaw("empty.csv", "");
  auto read = ReadCsv(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace srp
