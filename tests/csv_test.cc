#include "util/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace srp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripSimpleTable) {
  CsvTable table;
  table.header = {"a", "b", "c"};
  table.rows = {{"1", "2", "3"}, {"x", "y", "z"}};
  const std::string path = TempPath("simple.csv");
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->header, table.header);
  EXPECT_EQ(read->rows, table.rows);
}

TEST(CsvTest, QuotingOfSeparatorsAndQuotes) {
  CsvTable table;
  table.header = {"text"};
  table.rows = {{"has,comma"}, {"has\"quote"}, {"plain"}};
  const std::string path = TempPath("quoted.csv");
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows[0][0], "has,comma");
  EXPECT_EQ(read->rows[1][0], "has\"quote");
  EXPECT_EQ(read->rows[2][0], "plain");
}

TEST(CsvTest, ParseCsvLineHandlesQuotedFields) {
  const auto fields = ParseCsvLine("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvTest, ParseCsvLineEmptyFields) {
  const auto fields = ParseCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvTest, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"alpha", "beta"};
  EXPECT_EQ(table.ColumnIndex("alpha"), 0);
  EXPECT_EQ(table.ColumnIndex("beta"), 1);
  EXPECT_EQ(table.ColumnIndex("gamma"), -1);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = ReadCsv("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_FALSE(WriteCsv(table, "/nonexistent/dir/out.csv").ok());
}

}  // namespace
}  // namespace srp
