file(REMOVE_RECURSE
  "CMakeFiles/srp_repartition.dir/srp_repartition_main.cc.o"
  "CMakeFiles/srp_repartition.dir/srp_repartition_main.cc.o.d"
  "srp_repartition"
  "srp_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
