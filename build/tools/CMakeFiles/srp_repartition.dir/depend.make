# Empty dependencies file for srp_repartition.
# This may be replaced when dependencies are built.
