# Empty dependencies file for feature_allocator_test.
# This may be replaced when dependencies are built.
