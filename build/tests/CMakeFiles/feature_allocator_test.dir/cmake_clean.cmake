file(REMOVE_RECURSE
  "CMakeFiles/feature_allocator_test.dir/feature_allocator_test.cc.o"
  "CMakeFiles/feature_allocator_test.dir/feature_allocator_test.cc.o.d"
  "feature_allocator_test"
  "feature_allocator_test.pdb"
  "feature_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
