# Empty compiler generated dependencies file for gwr_test.
# This may be replaced when dependencies are built.
