file(REMOVE_RECURSE
  "CMakeFiles/gwr_test.dir/gwr_test.cc.o"
  "CMakeFiles/gwr_test.dir/gwr_test.cc.o.d"
  "gwr_test"
  "gwr_test.pdb"
  "gwr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gwr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
