# Empty dependencies file for dataset_prep_test.
# This may be replaced when dependencies are built.
