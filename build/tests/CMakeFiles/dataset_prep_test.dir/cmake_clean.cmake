file(REMOVE_RECURSE
  "CMakeFiles/dataset_prep_test.dir/dataset_prep_test.cc.o"
  "CMakeFiles/dataset_prep_test.dir/dataset_prep_test.cc.o.d"
  "dataset_prep_test"
  "dataset_prep_test.pdb"
  "dataset_prep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_prep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
