file(REMOVE_RECURSE
  "CMakeFiles/solve_test.dir/solve_test.cc.o"
  "CMakeFiles/solve_test.dir/solve_test.cc.o.d"
  "solve_test"
  "solve_test.pdb"
  "solve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
