# Empty compiler generated dependencies file for st_repartitioner_test.
# This may be replaced when dependencies are built.
