file(REMOVE_RECURSE
  "CMakeFiles/st_repartitioner_test.dir/st_repartitioner_test.cc.o"
  "CMakeFiles/st_repartitioner_test.dir/st_repartitioner_test.cc.o.d"
  "st_repartitioner_test"
  "st_repartitioner_test.pdb"
  "st_repartitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st_repartitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
