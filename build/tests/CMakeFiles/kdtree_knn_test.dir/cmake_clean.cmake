file(REMOVE_RECURSE
  "CMakeFiles/kdtree_knn_test.dir/kdtree_knn_test.cc.o"
  "CMakeFiles/kdtree_knn_test.dir/kdtree_knn_test.cc.o.d"
  "kdtree_knn_test"
  "kdtree_knn_test.pdb"
  "kdtree_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdtree_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
