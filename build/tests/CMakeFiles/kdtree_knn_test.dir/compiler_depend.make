# Empty compiler generated dependencies file for kdtree_knn_test.
# This may be replaced when dependencies are built.
