# Empty compiler generated dependencies file for variation_heap_test.
# This may be replaced when dependencies are built.
