file(REMOVE_RECURSE
  "CMakeFiles/variation_heap_test.dir/variation_heap_test.cc.o"
  "CMakeFiles/variation_heap_test.dir/variation_heap_test.cc.o.d"
  "variation_heap_test"
  "variation_heap_test.pdb"
  "variation_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
