file(REMOVE_RECURSE
  "CMakeFiles/tree_models_test.dir/tree_models_test.cc.o"
  "CMakeFiles/tree_models_test.dir/tree_models_test.cc.o.d"
  "tree_models_test"
  "tree_models_test.pdb"
  "tree_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
