
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tree_models_test.cc" "tests/CMakeFiles/tree_models_test.dir/tree_models_test.cc.o" "gcc" "tests/CMakeFiles/tree_models_test.dir/tree_models_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/srp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/srp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/srp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/srp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/srp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/srp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/srp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/srp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
