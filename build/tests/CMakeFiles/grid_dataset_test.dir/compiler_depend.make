# Empty compiler generated dependencies file for grid_dataset_test.
# This may be replaced when dependencies are built.
