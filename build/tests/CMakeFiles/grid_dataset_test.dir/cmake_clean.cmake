file(REMOVE_RECURSE
  "CMakeFiles/grid_dataset_test.dir/grid_dataset_test.cc.o"
  "CMakeFiles/grid_dataset_test.dir/grid_dataset_test.cc.o.d"
  "grid_dataset_test"
  "grid_dataset_test.pdb"
  "grid_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
