file(REMOVE_RECURSE
  "CMakeFiles/homogeneous_test.dir/homogeneous_test.cc.o"
  "CMakeFiles/homogeneous_test.dir/homogeneous_test.cc.o.d"
  "homogeneous_test"
  "homogeneous_test.pdb"
  "homogeneous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogeneous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
