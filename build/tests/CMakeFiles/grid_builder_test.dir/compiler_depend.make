# Empty compiler generated dependencies file for grid_builder_test.
# This may be replaced when dependencies are built.
