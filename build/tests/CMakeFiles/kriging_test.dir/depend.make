# Empty dependencies file for kriging_test.
# This may be replaced when dependencies are built.
