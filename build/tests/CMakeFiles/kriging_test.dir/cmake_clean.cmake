file(REMOVE_RECURSE
  "CMakeFiles/kriging_test.dir/kriging_test.cc.o"
  "CMakeFiles/kriging_test.dir/kriging_test.cc.o.d"
  "kriging_test"
  "kriging_test.pdb"
  "kriging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kriging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
