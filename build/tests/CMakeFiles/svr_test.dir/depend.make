# Empty dependencies file for svr_test.
# This may be replaced when dependencies are built.
