file(REMOVE_RECURSE
  "CMakeFiles/svr_test.dir/svr_test.cc.o"
  "CMakeFiles/svr_test.dir/svr_test.cc.o.d"
  "svr_test"
  "svr_test.pdb"
  "svr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
