file(REMOVE_RECURSE
  "CMakeFiles/spatial_weights_test.dir/spatial_weights_test.cc.o"
  "CMakeFiles/spatial_weights_test.dir/spatial_weights_test.cc.o.d"
  "spatial_weights_test"
  "spatial_weights_test.pdb"
  "spatial_weights_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_weights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
