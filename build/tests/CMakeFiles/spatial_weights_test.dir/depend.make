# Empty dependencies file for spatial_weights_test.
# This may be replaced when dependencies are built.
