# Empty dependencies file for repartitioner_test.
# This may be replaced when dependencies are built.
