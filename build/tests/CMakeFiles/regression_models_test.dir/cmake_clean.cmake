file(REMOVE_RECURSE
  "CMakeFiles/regression_models_test.dir/regression_models_test.cc.o"
  "CMakeFiles/regression_models_test.dir/regression_models_test.cc.o.d"
  "regression_models_test"
  "regression_models_test.pdb"
  "regression_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
