# Empty dependencies file for schc_test.
# This may be replaced when dependencies are built.
