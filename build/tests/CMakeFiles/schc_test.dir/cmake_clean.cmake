file(REMOVE_RECURSE
  "CMakeFiles/schc_test.dir/schc_test.cc.o"
  "CMakeFiles/schc_test.dir/schc_test.cc.o.d"
  "schc_test"
  "schc_test.pdb"
  "schc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
