file(REMOVE_RECURSE
  "CMakeFiles/clustering_agreement_test.dir/clustering_agreement_test.cc.o"
  "CMakeFiles/clustering_agreement_test.dir/clustering_agreement_test.cc.o.d"
  "clustering_agreement_test"
  "clustering_agreement_test.pdb"
  "clustering_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
