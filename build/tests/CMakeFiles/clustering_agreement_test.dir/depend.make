# Empty dependencies file for clustering_agreement_test.
# This may be replaced when dependencies are built.
