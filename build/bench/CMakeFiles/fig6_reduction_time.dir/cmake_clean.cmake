file(REMOVE_RECURSE
  "CMakeFiles/fig6_reduction_time.dir/fig6_reduction_time.cc.o"
  "CMakeFiles/fig6_reduction_time.dir/fig6_reduction_time.cc.o.d"
  "fig6_reduction_time"
  "fig6_reduction_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reduction_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
