# Empty dependencies file for fig6_reduction_time.
# This may be replaced when dependencies are built.
