# Empty dependencies file for fig9_cluster_class_time.
# This may be replaced when dependencies are built.
