# Empty dependencies file for ablation_variation_step.
# This may be replaced when dependencies are built.
