file(REMOVE_RECURSE
  "CMakeFiles/ablation_variation_step.dir/ablation_variation_step.cc.o"
  "CMakeFiles/ablation_variation_step.dir/ablation_variation_step.cc.o.d"
  "ablation_variation_step"
  "ablation_variation_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variation_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
