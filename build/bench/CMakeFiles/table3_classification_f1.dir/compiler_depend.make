# Empty compiler generated dependencies file for table3_classification_f1.
# This may be replaced when dependencies are built.
