file(REMOVE_RECURSE
  "libsrp_bench_common.a"
)
