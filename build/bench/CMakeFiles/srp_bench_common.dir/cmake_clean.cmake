file(REMOVE_RECURSE
  "CMakeFiles/srp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/srp_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/srp_bench_common.dir/model_runs.cc.o"
  "CMakeFiles/srp_bench_common.dir/model_runs.cc.o.d"
  "libsrp_bench_common.a"
  "libsrp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
