# Empty dependencies file for srp_bench_common.
# This may be replaced when dependencies are built.
