file(REMOVE_RECURSE
  "CMakeFiles/ablation_feature_allocator.dir/ablation_feature_allocator.cc.o"
  "CMakeFiles/ablation_feature_allocator.dir/ablation_feature_allocator.cc.o.d"
  "ablation_feature_allocator"
  "ablation_feature_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feature_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
