# Empty dependencies file for ablation_feature_allocator.
# This may be replaced when dependencies are built.
