file(REMOVE_RECURSE
  "CMakeFiles/fig5_cell_reduction.dir/fig5_cell_reduction.cc.o"
  "CMakeFiles/fig5_cell_reduction.dir/fig5_cell_reduction.cc.o.d"
  "fig5_cell_reduction"
  "fig5_cell_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cell_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
