# Empty compiler generated dependencies file for fig5_cell_reduction.
# This may be replaced when dependencies are built.
