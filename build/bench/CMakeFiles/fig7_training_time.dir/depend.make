# Empty dependencies file for fig7_training_time.
# This may be replaced when dependencies are built.
