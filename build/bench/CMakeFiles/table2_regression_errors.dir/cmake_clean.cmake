file(REMOVE_RECURSE
  "CMakeFiles/table2_regression_errors.dir/table2_regression_errors.cc.o"
  "CMakeFiles/table2_regression_errors.dir/table2_regression_errors.cc.o.d"
  "table2_regression_errors"
  "table2_regression_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_regression_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
