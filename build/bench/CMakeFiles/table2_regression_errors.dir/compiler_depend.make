# Empty compiler generated dependencies file for table2_regression_errors.
# This may be replaced when dependencies are built.
