file(REMOVE_RECURSE
  "CMakeFiles/fig10_cluster_class_memory.dir/fig10_cluster_class_memory.cc.o"
  "CMakeFiles/fig10_cluster_class_memory.dir/fig10_cluster_class_memory.cc.o.d"
  "fig10_cluster_class_memory"
  "fig10_cluster_class_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cluster_class_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
