file(REMOVE_RECURSE
  "CMakeFiles/fig8_memory_usage.dir/fig8_memory_usage.cc.o"
  "CMakeFiles/fig8_memory_usage.dir/fig8_memory_usage.cc.o.d"
  "fig8_memory_usage"
  "fig8_memory_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memory_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
