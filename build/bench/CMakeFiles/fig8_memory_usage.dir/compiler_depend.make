# Empty compiler generated dependencies file for fig8_memory_usage.
# This may be replaced when dependencies are built.
