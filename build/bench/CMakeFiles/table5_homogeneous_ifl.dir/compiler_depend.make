# Empty compiler generated dependencies file for table5_homogeneous_ifl.
# This may be replaced when dependencies are built.
