file(REMOVE_RECURSE
  "CMakeFiles/table5_homogeneous_ifl.dir/table5_homogeneous_ifl.cc.o"
  "CMakeFiles/table5_homogeneous_ifl.dir/table5_homogeneous_ifl.cc.o.d"
  "table5_homogeneous_ifl"
  "table5_homogeneous_ifl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_homogeneous_ifl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
