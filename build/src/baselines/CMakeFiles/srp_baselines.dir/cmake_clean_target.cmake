file(REMOVE_RECURSE
  "libsrp_baselines.a"
)
