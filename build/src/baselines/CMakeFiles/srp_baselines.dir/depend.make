# Empty dependencies file for srp_baselines.
# This may be replaced when dependencies are built.
