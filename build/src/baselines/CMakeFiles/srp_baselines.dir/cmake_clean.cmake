file(REMOVE_RECURSE
  "CMakeFiles/srp_baselines.dir/clustering_reduction.cc.o"
  "CMakeFiles/srp_baselines.dir/clustering_reduction.cc.o.d"
  "CMakeFiles/srp_baselines.dir/reduced_dataset.cc.o"
  "CMakeFiles/srp_baselines.dir/reduced_dataset.cc.o.d"
  "CMakeFiles/srp_baselines.dir/regionalization.cc.o"
  "CMakeFiles/srp_baselines.dir/regionalization.cc.o.d"
  "CMakeFiles/srp_baselines.dir/sampling.cc.o"
  "CMakeFiles/srp_baselines.dir/sampling.cc.o.d"
  "libsrp_baselines.a"
  "libsrp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
