# Empty compiler generated dependencies file for srp_core.
# This may be replaced when dependencies are built.
