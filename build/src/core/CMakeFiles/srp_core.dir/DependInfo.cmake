
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adjacency.cc" "src/core/CMakeFiles/srp_core.dir/adjacency.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/adjacency.cc.o.d"
  "/root/repo/src/core/extractor.cc" "src/core/CMakeFiles/srp_core.dir/extractor.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/extractor.cc.o.d"
  "/root/repo/src/core/feature_allocator.cc" "src/core/CMakeFiles/srp_core.dir/feature_allocator.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/feature_allocator.cc.o.d"
  "/root/repo/src/core/homogeneous.cc" "src/core/CMakeFiles/srp_core.dir/homogeneous.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/homogeneous.cc.o.d"
  "/root/repo/src/core/information_loss.cc" "src/core/CMakeFiles/srp_core.dir/information_loss.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/information_loss.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/srp_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/partition.cc.o.d"
  "/root/repo/src/core/reconstruct.cc" "src/core/CMakeFiles/srp_core.dir/reconstruct.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/reconstruct.cc.o.d"
  "/root/repo/src/core/repartitioner.cc" "src/core/CMakeFiles/srp_core.dir/repartitioner.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/repartitioner.cc.o.d"
  "/root/repo/src/core/variation.cc" "src/core/CMakeFiles/srp_core.dir/variation.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/variation.cc.o.d"
  "/root/repo/src/core/variation_heap.cc" "src/core/CMakeFiles/srp_core.dir/variation_heap.cc.o" "gcc" "src/core/CMakeFiles/srp_core.dir/variation_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/srp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/srp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
