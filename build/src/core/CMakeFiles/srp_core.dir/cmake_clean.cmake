file(REMOVE_RECURSE
  "CMakeFiles/srp_core.dir/adjacency.cc.o"
  "CMakeFiles/srp_core.dir/adjacency.cc.o.d"
  "CMakeFiles/srp_core.dir/extractor.cc.o"
  "CMakeFiles/srp_core.dir/extractor.cc.o.d"
  "CMakeFiles/srp_core.dir/feature_allocator.cc.o"
  "CMakeFiles/srp_core.dir/feature_allocator.cc.o.d"
  "CMakeFiles/srp_core.dir/homogeneous.cc.o"
  "CMakeFiles/srp_core.dir/homogeneous.cc.o.d"
  "CMakeFiles/srp_core.dir/information_loss.cc.o"
  "CMakeFiles/srp_core.dir/information_loss.cc.o.d"
  "CMakeFiles/srp_core.dir/partition.cc.o"
  "CMakeFiles/srp_core.dir/partition.cc.o.d"
  "CMakeFiles/srp_core.dir/reconstruct.cc.o"
  "CMakeFiles/srp_core.dir/reconstruct.cc.o.d"
  "CMakeFiles/srp_core.dir/repartitioner.cc.o"
  "CMakeFiles/srp_core.dir/repartitioner.cc.o.d"
  "CMakeFiles/srp_core.dir/variation.cc.o"
  "CMakeFiles/srp_core.dir/variation.cc.o.d"
  "CMakeFiles/srp_core.dir/variation_heap.cc.o"
  "CMakeFiles/srp_core.dir/variation_heap.cc.o.d"
  "libsrp_core.a"
  "libsrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
