# Empty compiler generated dependencies file for srp_metrics.
# This may be replaced when dependencies are built.
