file(REMOVE_RECURSE
  "libsrp_metrics.a"
)
