file(REMOVE_RECURSE
  "CMakeFiles/srp_metrics.dir/autocorrelation.cc.o"
  "CMakeFiles/srp_metrics.dir/autocorrelation.cc.o.d"
  "CMakeFiles/srp_metrics.dir/classification_metrics.cc.o"
  "CMakeFiles/srp_metrics.dir/classification_metrics.cc.o.d"
  "CMakeFiles/srp_metrics.dir/clustering_agreement.cc.o"
  "CMakeFiles/srp_metrics.dir/clustering_agreement.cc.o.d"
  "CMakeFiles/srp_metrics.dir/regression_metrics.cc.o"
  "CMakeFiles/srp_metrics.dir/regression_metrics.cc.o.d"
  "libsrp_metrics.a"
  "libsrp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
