
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/autocorrelation.cc" "src/metrics/CMakeFiles/srp_metrics.dir/autocorrelation.cc.o" "gcc" "src/metrics/CMakeFiles/srp_metrics.dir/autocorrelation.cc.o.d"
  "/root/repo/src/metrics/classification_metrics.cc" "src/metrics/CMakeFiles/srp_metrics.dir/classification_metrics.cc.o" "gcc" "src/metrics/CMakeFiles/srp_metrics.dir/classification_metrics.cc.o.d"
  "/root/repo/src/metrics/clustering_agreement.cc" "src/metrics/CMakeFiles/srp_metrics.dir/clustering_agreement.cc.o" "gcc" "src/metrics/CMakeFiles/srp_metrics.dir/clustering_agreement.cc.o.d"
  "/root/repo/src/metrics/regression_metrics.cc" "src/metrics/CMakeFiles/srp_metrics.dir/regression_metrics.cc.o" "gcc" "src/metrics/CMakeFiles/srp_metrics.dir/regression_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
