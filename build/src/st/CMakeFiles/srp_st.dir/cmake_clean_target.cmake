file(REMOVE_RECURSE
  "libsrp_st.a"
)
