# Empty dependencies file for srp_st.
# This may be replaced when dependencies are built.
