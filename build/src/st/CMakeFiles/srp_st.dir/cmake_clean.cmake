file(REMOVE_RECURSE
  "CMakeFiles/srp_st.dir/st_repartitioner.cc.o"
  "CMakeFiles/srp_st.dir/st_repartitioner.cc.o.d"
  "CMakeFiles/srp_st.dir/temporal_grid.cc.o"
  "CMakeFiles/srp_st.dir/temporal_grid.cc.o.d"
  "libsrp_st.a"
  "libsrp_st.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
