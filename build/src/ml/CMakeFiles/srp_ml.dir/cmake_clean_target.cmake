file(REMOVE_RECURSE
  "libsrp_ml.a"
)
