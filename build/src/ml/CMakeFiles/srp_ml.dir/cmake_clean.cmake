file(REMOVE_RECURSE
  "CMakeFiles/srp_ml.dir/dataset.cc.o"
  "CMakeFiles/srp_ml.dir/dataset.cc.o.d"
  "CMakeFiles/srp_ml.dir/decision_tree.cc.o"
  "CMakeFiles/srp_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/srp_ml.dir/gradient_boosting.cc.o"
  "CMakeFiles/srp_ml.dir/gradient_boosting.cc.o.d"
  "CMakeFiles/srp_ml.dir/gwr.cc.o"
  "CMakeFiles/srp_ml.dir/gwr.cc.o.d"
  "CMakeFiles/srp_ml.dir/kdtree.cc.o"
  "CMakeFiles/srp_ml.dir/kdtree.cc.o.d"
  "CMakeFiles/srp_ml.dir/knn.cc.o"
  "CMakeFiles/srp_ml.dir/knn.cc.o.d"
  "CMakeFiles/srp_ml.dir/kriging.cc.o"
  "CMakeFiles/srp_ml.dir/kriging.cc.o.d"
  "CMakeFiles/srp_ml.dir/ols.cc.o"
  "CMakeFiles/srp_ml.dir/ols.cc.o.d"
  "CMakeFiles/srp_ml.dir/random_forest.cc.o"
  "CMakeFiles/srp_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/srp_ml.dir/schc.cc.o"
  "CMakeFiles/srp_ml.dir/schc.cc.o.d"
  "CMakeFiles/srp_ml.dir/spatial_error.cc.o"
  "CMakeFiles/srp_ml.dir/spatial_error.cc.o.d"
  "CMakeFiles/srp_ml.dir/spatial_lag.cc.o"
  "CMakeFiles/srp_ml.dir/spatial_lag.cc.o.d"
  "CMakeFiles/srp_ml.dir/spatial_weights.cc.o"
  "CMakeFiles/srp_ml.dir/spatial_weights.cc.o.d"
  "CMakeFiles/srp_ml.dir/svr.cc.o"
  "CMakeFiles/srp_ml.dir/svr.cc.o.d"
  "CMakeFiles/srp_ml.dir/variogram.cc.o"
  "CMakeFiles/srp_ml.dir/variogram.cc.o.d"
  "libsrp_ml.a"
  "libsrp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
