
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/srp_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/srp_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/gradient_boosting.cc" "src/ml/CMakeFiles/srp_ml.dir/gradient_boosting.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/ml/gwr.cc" "src/ml/CMakeFiles/srp_ml.dir/gwr.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/gwr.cc.o.d"
  "/root/repo/src/ml/kdtree.cc" "src/ml/CMakeFiles/srp_ml.dir/kdtree.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/kdtree.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/srp_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/kriging.cc" "src/ml/CMakeFiles/srp_ml.dir/kriging.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/kriging.cc.o.d"
  "/root/repo/src/ml/ols.cc" "src/ml/CMakeFiles/srp_ml.dir/ols.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/ols.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/srp_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/schc.cc" "src/ml/CMakeFiles/srp_ml.dir/schc.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/schc.cc.o.d"
  "/root/repo/src/ml/spatial_error.cc" "src/ml/CMakeFiles/srp_ml.dir/spatial_error.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/spatial_error.cc.o.d"
  "/root/repo/src/ml/spatial_lag.cc" "src/ml/CMakeFiles/srp_ml.dir/spatial_lag.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/spatial_lag.cc.o.d"
  "/root/repo/src/ml/spatial_weights.cc" "src/ml/CMakeFiles/srp_ml.dir/spatial_weights.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/spatial_weights.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/ml/CMakeFiles/srp_ml.dir/svr.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/svr.cc.o.d"
  "/root/repo/src/ml/variogram.cc" "src/ml/CMakeFiles/srp_ml.dir/variogram.cc.o" "gcc" "src/ml/CMakeFiles/srp_ml.dir/variogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/srp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/srp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/srp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/srp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/srp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
