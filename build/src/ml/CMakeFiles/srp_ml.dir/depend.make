# Empty dependencies file for srp_ml.
# This may be replaced when dependencies are built.
