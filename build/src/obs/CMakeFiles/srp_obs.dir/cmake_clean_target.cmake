file(REMOVE_RECURSE
  "libsrp_obs.a"
)
