
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/metrics_registry.cc" "src/obs/CMakeFiles/srp_obs.dir/metrics_registry.cc.o" "gcc" "src/obs/CMakeFiles/srp_obs.dir/metrics_registry.cc.o.d"
  "/root/repo/src/obs/tracer.cc" "src/obs/CMakeFiles/srp_obs.dir/tracer.cc.o" "gcc" "src/obs/CMakeFiles/srp_obs.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
