# Empty dependencies file for srp_obs.
# This may be replaced when dependencies are built.
