file(REMOVE_RECURSE
  "CMakeFiles/srp_obs.dir/metrics_registry.cc.o"
  "CMakeFiles/srp_obs.dir/metrics_registry.cc.o.d"
  "CMakeFiles/srp_obs.dir/tracer.cc.o"
  "CMakeFiles/srp_obs.dir/tracer.cc.o.d"
  "libsrp_obs.a"
  "libsrp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
