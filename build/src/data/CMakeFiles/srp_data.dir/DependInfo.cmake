
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/datasets.cc" "src/data/CMakeFiles/srp_data.dir/datasets.cc.o" "gcc" "src/data/CMakeFiles/srp_data.dir/datasets.cc.o.d"
  "/root/repo/src/data/gaussian_field.cc" "src/data/CMakeFiles/srp_data.dir/gaussian_field.cc.o" "gcc" "src/data/CMakeFiles/srp_data.dir/gaussian_field.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/srp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/srp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
