# Empty compiler generated dependencies file for srp_data.
# This may be replaced when dependencies are built.
