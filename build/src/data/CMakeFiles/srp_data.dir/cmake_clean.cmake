file(REMOVE_RECURSE
  "CMakeFiles/srp_data.dir/datasets.cc.o"
  "CMakeFiles/srp_data.dir/datasets.cc.o.d"
  "CMakeFiles/srp_data.dir/gaussian_field.cc.o"
  "CMakeFiles/srp_data.dir/gaussian_field.cc.o.d"
  "libsrp_data.a"
  "libsrp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
