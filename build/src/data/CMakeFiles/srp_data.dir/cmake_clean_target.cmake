file(REMOVE_RECURSE
  "libsrp_data.a"
)
