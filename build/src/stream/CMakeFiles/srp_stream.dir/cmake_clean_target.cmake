file(REMOVE_RECURSE
  "libsrp_stream.a"
)
