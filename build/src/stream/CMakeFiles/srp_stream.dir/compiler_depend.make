# Empty compiler generated dependencies file for srp_stream.
# This may be replaced when dependencies are built.
