file(REMOVE_RECURSE
  "CMakeFiles/srp_stream.dir/streaming_repartitioner.cc.o"
  "CMakeFiles/srp_stream.dir/streaming_repartitioner.cc.o.d"
  "libsrp_stream.a"
  "libsrp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
