# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("linalg")
subdirs("grid")
subdirs("core")
subdirs("metrics")
subdirs("data")
subdirs("baselines")
subdirs("ml")
subdirs("st")
subdirs("stream")
