# Empty compiler generated dependencies file for srp_grid.
# This may be replaced when dependencies are built.
