file(REMOVE_RECURSE
  "libsrp_grid.a"
)
