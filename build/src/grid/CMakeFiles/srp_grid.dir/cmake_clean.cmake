file(REMOVE_RECURSE
  "CMakeFiles/srp_grid.dir/grid_builder.cc.o"
  "CMakeFiles/srp_grid.dir/grid_builder.cc.o.d"
  "CMakeFiles/srp_grid.dir/grid_dataset.cc.o"
  "CMakeFiles/srp_grid.dir/grid_dataset.cc.o.d"
  "CMakeFiles/srp_grid.dir/normalize.cc.o"
  "CMakeFiles/srp_grid.dir/normalize.cc.o.d"
  "libsrp_grid.a"
  "libsrp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
