
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/grid_builder.cc" "src/grid/CMakeFiles/srp_grid.dir/grid_builder.cc.o" "gcc" "src/grid/CMakeFiles/srp_grid.dir/grid_builder.cc.o.d"
  "/root/repo/src/grid/grid_dataset.cc" "src/grid/CMakeFiles/srp_grid.dir/grid_dataset.cc.o" "gcc" "src/grid/CMakeFiles/srp_grid.dir/grid_dataset.cc.o.d"
  "/root/repo/src/grid/normalize.cc" "src/grid/CMakeFiles/srp_grid.dir/normalize.cc.o" "gcc" "src/grid/CMakeFiles/srp_grid.dir/normalize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/srp_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
