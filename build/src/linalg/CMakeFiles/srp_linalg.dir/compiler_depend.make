# Empty compiler generated dependencies file for srp_linalg.
# This may be replaced when dependencies are built.
