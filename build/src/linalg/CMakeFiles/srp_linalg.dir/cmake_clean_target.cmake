file(REMOVE_RECURSE
  "libsrp_linalg.a"
)
