file(REMOVE_RECURSE
  "CMakeFiles/srp_linalg.dir/cholesky.cc.o"
  "CMakeFiles/srp_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/srp_linalg.dir/lu.cc.o"
  "CMakeFiles/srp_linalg.dir/lu.cc.o.d"
  "CMakeFiles/srp_linalg.dir/matrix.cc.o"
  "CMakeFiles/srp_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/srp_linalg.dir/solve.cc.o"
  "CMakeFiles/srp_linalg.dir/solve.cc.o.d"
  "CMakeFiles/srp_linalg.dir/stats.cc.o"
  "CMakeFiles/srp_linalg.dir/stats.cc.o.d"
  "libsrp_linalg.a"
  "libsrp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
