file(REMOVE_RECURSE
  "libsrp_util.a"
)
