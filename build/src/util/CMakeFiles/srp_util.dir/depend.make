# Empty dependencies file for srp_util.
# This may be replaced when dependencies are built.
