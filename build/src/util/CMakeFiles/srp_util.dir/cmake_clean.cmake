file(REMOVE_RECURSE
  "CMakeFiles/srp_util.dir/csv.cc.o"
  "CMakeFiles/srp_util.dir/csv.cc.o.d"
  "CMakeFiles/srp_util.dir/logging.cc.o"
  "CMakeFiles/srp_util.dir/logging.cc.o.d"
  "CMakeFiles/srp_util.dir/memory_tracker.cc.o"
  "CMakeFiles/srp_util.dir/memory_tracker.cc.o.d"
  "CMakeFiles/srp_util.dir/random.cc.o"
  "CMakeFiles/srp_util.dir/random.cc.o.d"
  "CMakeFiles/srp_util.dir/status.cc.o"
  "CMakeFiles/srp_util.dir/status.cc.o.d"
  "CMakeFiles/srp_util.dir/string_util.cc.o"
  "CMakeFiles/srp_util.dir/string_util.cc.o.d"
  "libsrp_util.a"
  "libsrp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
