file(REMOVE_RECURSE
  "CMakeFiles/srp_memtrack.dir/memtrack_new.cc.o"
  "CMakeFiles/srp_memtrack.dir/memtrack_new.cc.o.d"
  "libsrp_memtrack.a"
  "libsrp_memtrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srp_memtrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
