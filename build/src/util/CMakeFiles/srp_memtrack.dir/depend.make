# Empty dependencies file for srp_memtrack.
# This may be replaced when dependencies are built.
