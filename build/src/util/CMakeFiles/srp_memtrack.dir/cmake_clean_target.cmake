file(REMOVE_RECURSE
  "libsrp_memtrack.a"
)
