file(REMOVE_RECURSE
  "CMakeFiles/housing_regression.dir/housing_regression.cpp.o"
  "CMakeFiles/housing_regression.dir/housing_regression.cpp.o.d"
  "housing_regression"
  "housing_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/housing_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
