file(REMOVE_RECURSE
  "CMakeFiles/taxi_kriging.dir/taxi_kriging.cpp.o"
  "CMakeFiles/taxi_kriging.dir/taxi_kriging.cpp.o.d"
  "taxi_kriging"
  "taxi_kriging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
