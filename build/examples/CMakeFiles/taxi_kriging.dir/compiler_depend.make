# Empty compiler generated dependencies file for taxi_kriging.
# This may be replaced when dependencies are built.
