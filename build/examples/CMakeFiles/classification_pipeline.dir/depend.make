# Empty dependencies file for classification_pipeline.
# This may be replaced when dependencies are built.
