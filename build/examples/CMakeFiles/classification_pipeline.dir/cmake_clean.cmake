file(REMOVE_RECURSE
  "CMakeFiles/classification_pipeline.dir/classification_pipeline.cpp.o"
  "CMakeFiles/classification_pipeline.dir/classification_pipeline.cpp.o.d"
  "classification_pipeline"
  "classification_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
