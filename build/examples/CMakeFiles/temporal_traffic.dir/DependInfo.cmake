
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/temporal_traffic.cpp" "examples/CMakeFiles/temporal_traffic.dir/temporal_traffic.cpp.o" "gcc" "examples/CMakeFiles/temporal_traffic.dir/temporal_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/st/CMakeFiles/srp_st.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/srp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/srp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/srp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/srp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/srp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
