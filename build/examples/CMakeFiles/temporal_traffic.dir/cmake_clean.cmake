file(REMOVE_RECURSE
  "CMakeFiles/temporal_traffic.dir/temporal_traffic.cpp.o"
  "CMakeFiles/temporal_traffic.dir/temporal_traffic.cpp.o.d"
  "temporal_traffic"
  "temporal_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
