# Empty compiler generated dependencies file for temporal_traffic.
# This may be replaced when dependencies are built.
