// Perf-regression diff gate: compares candidate BENCH_*.json artifacts
// against a committed baseline and exits non-zero when a row moved in the
// bad direction by more than the noise-aware tolerance.
//
// Usage:
//   srp_bench_diff [flags] <baseline> <candidate>
//
// <baseline> and <candidate> are each a BENCH_*.json file or a directory of
// them. Exit codes: 0 pass, 1 regression (or missing baseline row), 2 bad
// usage / IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_diff.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: srp_bench_diff [flags] <baseline> <candidate>\n"
               "  <baseline>/<candidate>: BENCH_*.json file or directory\n"
               "flags:\n"
               "  --rel-tolerance=F     relative regression tolerance "
               "(default 0.25)\n"
               "  --abs-floor-seconds=F ignore timing deltas below F seconds "
               "(default 0.005)\n"
               "  --abs-floor-bytes=F   ignore byte deltas below F bytes "
               "(default 1048576)\n"
               "  --stddev-mult=F       ignore deltas within F x recorded "
               "stddev (default 2.0)\n"
               "  --no-fail-on-missing  report baseline rows absent from the "
               "candidate without failing\n");
}

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const double value = std::strtod(arg + len + 1, &end);
  if (end == arg + len + 1 || *end != '\0') {
    std::fprintf(stderr, "srp_bench_diff: bad value for %s: %s\n", name, arg);
    std::exit(2);
  }
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  srp::benchdiff::BenchDiffOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    }
    if (std::strcmp(arg, "--no-fail-on-missing") == 0) {
      options.fail_on_missing = false;
    } else if (ParseDoubleFlag(arg, "--rel-tolerance",
                               &options.rel_tolerance) ||
               ParseDoubleFlag(arg, "--abs-floor-seconds",
                               &options.abs_floor_seconds) ||
               ParseDoubleFlag(arg, "--abs-floor-bytes",
                               &options.abs_floor_bytes) ||
               ParseDoubleFlag(arg, "--stddev-mult", &options.stddev_mult)) {
      // handled
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "srp_bench_diff: unknown flag: %s\n", arg);
      PrintUsage(stderr);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    PrintUsage(stderr);
    return 2;
  }

  auto baseline = srp::benchdiff::LoadBenchRows(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "srp_bench_diff: baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = srp::benchdiff::LoadBenchRows(paths[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "srp_bench_diff: candidate: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  const srp::benchdiff::DiffReport report =
      srp::benchdiff::DiffBenchRows(*baseline, *candidate, options);
  srp::benchdiff::PrintDiffReport(report, stdout);
  return report.failed ? 1 : 0;
}
