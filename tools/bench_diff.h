#ifndef SRP_TOOLS_BENCH_DIFF_H_
#define SRP_TOOLS_BENCH_DIFF_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace srp {
namespace benchdiff {

/// One measurement row loaded from a BENCH_*.json artifact. Rows are matched
/// between baseline and candidate by (bench, tier, threshold, metric, unit).
struct ParsedBenchRow {
  std::string bench;
  std::string tier;
  double threshold = 0.0;
  std::string metric;
  std::string unit;
  double value = 0.0;
  int repeats = 1;
  double stddev = 0.0;
};

/// Whether a larger value of a row is worse, better, or neither. Inferred
/// from the row's unit so the diff gate never misreads a throughput gain as
/// a latency regression.
enum class Direction {
  kLowerIsBetter,   ///< durations, bytes, error metrics
  kHigherIsBetter,  ///< throughput, accuracy scores
  kInfoOnly,        ///< counts and shares: reported, never gated
};

Direction DirectionForUnit(const std::string& unit);

/// Composite match key for a row: (bench, tier, threshold, metric, unit).
/// The threshold is formatted with fixed precision so 0.1 and a re-parsed
/// 0.1000000001 still match. Shared by the diff gate and the trend table.
std::string BenchRowKey(const ParsedBenchRow& row);

/// Noise-aware gate policy. A matched row REGRESSES only when it moved in
/// the bad direction by more than ALL of: rel_tolerance × |baseline|, the
/// unit's absolute floor, and stddev_mult × the larger of the two recorded
/// stddevs. The absolute floors keep micro-rows (a 2 ms → 3 ms run is +50%
/// but meaningless) from tripping the relative check.
struct BenchDiffOptions {
  double rel_tolerance = 0.25;
  double abs_floor_seconds = 0.005;      ///< rows with unit "s"
  double abs_floor_bytes = 1 << 20;      ///< rows with unit "bytes" (1 MiB)
  double stddev_mult = 2.0;
  /// Fail when a baseline row has no candidate counterpart (a silently
  /// dropped benchmark is itself a regression). Candidate-only rows are
  /// always reported as "new" and never fail.
  bool fail_on_missing = true;
};

enum class RowVerdict { kOk, kImproved, kRegressed, kMissing, kNew, kInfo };

const char* RowVerdictName(RowVerdict verdict);

/// One row of the printed diff table.
struct DiffRow {
  RowVerdict verdict = RowVerdict::kOk;
  std::string bench;
  std::string tier;
  double threshold = 0.0;
  std::string metric;
  std::string unit;
  double base_value = 0.0;
  double cand_value = 0.0;
  double delta_pct = 0.0;  ///< signed (candidate - baseline) / |baseline|
};

struct DiffReport {
  std::vector<DiffRow> rows;
  size_t ok = 0;
  size_t improved = 0;
  size_t regressed = 0;
  size_t missing = 0;
  size_t added = 0;
  size_t info = 0;
  /// Every row the gate skipped for having an info-only unit — the matched
  /// `info` rows plus candidate-only rows with info-only units (counted in
  /// `added` too). Printed in the summary so skipped rows are never silent
  /// (the "no silent caps" rule, DESIGN.md §9).
  size_t info_skipped = 0;

  /// True when the gate should fail the build per `options.fail_on_missing`.
  bool failed = false;
};

/// Extracts the rows array from one parsed BENCH_*.json document.
Result<std::vector<ParsedBenchRow>> RowsFromBenchJson(const JsonValue& doc);

/// Loads rows from `path`: a single BENCH_*.json file, or a directory whose
/// immediate BENCH_*.json children are all loaded (sorted by filename so
/// row order is deterministic).
Result<std::vector<ParsedBenchRow>> LoadBenchRows(const std::string& path);

/// Matches baseline rows against candidate rows by key and applies the
/// gate policy. Row order follows the baseline (then candidate-only rows).
DiffReport DiffBenchRows(const std::vector<ParsedBenchRow>& baseline,
                         const std::vector<ParsedBenchRow>& candidate,
                         const BenchDiffOptions& options);

/// Per-row table plus a one-line summary.
void PrintDiffReport(const DiffReport& report, std::FILE* out);

}  // namespace benchdiff
}  // namespace srp

#endif  // SRP_TOOLS_BENCH_DIFF_H_
