#include "bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "util/string_util.h"

namespace srp {
namespace benchdiff {
namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open file: " + path);
  std::string out;
  char buffer[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read error on file: " + path);
  return out;
}

double AbsFloorForUnit(const std::string& unit,
                       const BenchDiffOptions& options) {
  if (unit == "s" || unit == "seconds") return options.abs_floor_seconds;
  if (unit == "ms") return options.abs_floor_seconds * 1e3;
  if (unit == "bytes") return options.abs_floor_bytes;
  return 0.0;
}

}  // namespace

std::string BenchRowKey(const ParsedBenchRow& row) {
  return row.bench + "\x1f" + row.tier + "\x1f" +
         FormatDouble(row.threshold, 6) + "\x1f" + row.metric + "\x1f" +
         row.unit;
}

Direction DirectionForUnit(const std::string& unit) {
  if (unit == "s" || unit == "seconds" || unit == "ms" || unit == "bytes" ||
      unit == "MiB" || unit == "mae" || unit == "rmse" || unit == "se" ||
      unit == "ifl") {
    return Direction::kLowerIsBetter;
  }
  if (unit == "cells/sec" || unit == "items/sec" || unit == "f1" ||
      unit == "r2" || unit == "pct_correct") {
    return Direction::kHigherIsBetter;
  }
  return Direction::kInfoOnly;
}

const char* RowVerdictName(RowVerdict verdict) {
  switch (verdict) {
    case RowVerdict::kOk:
      return "ok";
    case RowVerdict::kImproved:
      return "improved";
    case RowVerdict::kRegressed:
      return "REGRESSED";
    case RowVerdict::kMissing:
      return "MISSING";
    case RowVerdict::kNew:
      return "new";
    case RowVerdict::kInfo:
      return "info";
  }
  return "?";
}

Result<std::vector<ParsedBenchRow>> RowsFromBenchJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("bench JSON root is not an object");
  }
  const JsonValue* schema = doc.Find("schema_version");
  if (schema == nullptr || !schema->is_number()) {
    return Status::InvalidArgument("bench JSON lacks a schema_version");
  }
  const JsonValue* rows = doc.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("bench JSON lacks a rows array");
  }
  std::vector<ParsedBenchRow> out;
  out.reserve(rows->size());
  for (const JsonValue& entry : rows->items()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument("bench row is not an object");
    }
    const JsonValue* metric = entry.Find("metric");
    const JsonValue* value = entry.Find("value");
    if (metric == nullptr || !metric->is_string() || value == nullptr ||
        !value->is_number()) {
      return Status::InvalidArgument(
          "bench row lacks a string metric / numeric value");
    }
    ParsedBenchRow row;
    const auto string_field = [&entry](const char* key) {
      const JsonValue* v = entry.Find(key);
      return v != nullptr && v->is_string() ? v->string_value()
                                            : std::string();
    };
    const auto number_field = [&entry](const char* key) {
      const JsonValue* v = entry.Find(key);
      return v != nullptr ? v->number_value() : 0.0;
    };
    row.bench = string_field("bench");
    row.tier = string_field("tier");
    row.threshold = number_field("threshold");
    row.metric = metric->string_value();
    row.unit = string_field("unit");
    row.value = value->number_value();
    row.repeats = std::max(1, static_cast<int>(number_field("repeats")));
    row.stddev = number_field("stddev");
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::vector<ParsedBenchRow>> LoadBenchRows(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> files;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        files.push_back(entry.path().string());
      }
    }
    if (ec) return Status::IOError("cannot list directory: " + path);
    if (files.empty()) {
      return Status::InvalidArgument("no BENCH_*.json files in " + path);
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }

  std::vector<ParsedBenchRow> out;
  for (const std::string& file : files) {
    auto contents = ReadWholeFile(file);
    SRP_RETURN_IF_ERROR(contents.status());
    auto doc = JsonValue::Parse(*contents);
    if (!doc.ok()) {
      return Status::InvalidArgument(file + ": " +
                                     doc.status().message());
    }
    auto rows = RowsFromBenchJson(*doc);
    if (!rows.ok()) {
      return Status::InvalidArgument(file + ": " + rows.status().message());
    }
    out.insert(out.end(), rows->begin(), rows->end());
  }
  return out;
}

DiffReport DiffBenchRows(const std::vector<ParsedBenchRow>& baseline,
                         const std::vector<ParsedBenchRow>& candidate,
                         const BenchDiffOptions& options) {
  DiffReport report;
  std::map<std::string, const ParsedBenchRow*> candidate_by_key;
  for (const ParsedBenchRow& row : candidate) {
    candidate_by_key[BenchRowKey(row)] = &row;
  }

  std::map<std::string, bool> baseline_keys;
  for (const ParsedBenchRow& base : baseline) {
    baseline_keys[BenchRowKey(base)] = true;
    DiffRow diff;
    diff.bench = base.bench;
    diff.tier = base.tier;
    diff.threshold = base.threshold;
    diff.metric = base.metric;
    diff.unit = base.unit;
    diff.base_value = base.value;

    const auto it = candidate_by_key.find(BenchRowKey(base));
    if (it == candidate_by_key.end()) {
      diff.verdict = RowVerdict::kMissing;
      ++report.missing;
      report.rows.push_back(std::move(diff));
      continue;
    }
    const ParsedBenchRow& cand = *it->second;
    diff.cand_value = cand.value;
    diff.delta_pct = std::abs(base.value) < 1e-300
                         ? 0.0
                         : 100.0 * (cand.value - base.value) /
                               std::abs(base.value);

    const Direction direction = DirectionForUnit(base.unit);
    if (direction == Direction::kInfoOnly) {
      diff.verdict = RowVerdict::kInfo;
      ++report.info;
      ++report.info_skipped;
      report.rows.push_back(std::move(diff));
      continue;
    }

    // Positive = moved in the bad direction.
    const double worse_by = direction == Direction::kLowerIsBetter
                                ? cand.value - base.value
                                : base.value - cand.value;
    const double tolerance =
        std::max({options.rel_tolerance * std::abs(base.value),
                  AbsFloorForUnit(base.unit, options),
                  options.stddev_mult * std::max(base.stddev, cand.stddev)});
    if (worse_by > tolerance) {
      diff.verdict = RowVerdict::kRegressed;
      ++report.regressed;
    } else if (-worse_by > tolerance) {
      diff.verdict = RowVerdict::kImproved;
      ++report.improved;
    } else {
      diff.verdict = RowVerdict::kOk;
      ++report.ok;
    }
    report.rows.push_back(std::move(diff));
  }

  // Candidate-only rows: informational (a new benchmark is progress, not a
  // regression).
  for (const ParsedBenchRow& cand : candidate) {
    if (baseline_keys.count(BenchRowKey(cand)) != 0) continue;
    DiffRow diff;
    diff.verdict = RowVerdict::kNew;
    diff.bench = cand.bench;
    diff.tier = cand.tier;
    diff.threshold = cand.threshold;
    diff.metric = cand.metric;
    diff.unit = cand.unit;
    diff.cand_value = cand.value;
    ++report.added;
    if (DirectionForUnit(cand.unit) == Direction::kInfoOnly) {
      ++report.info_skipped;
    }
    report.rows.push_back(std::move(diff));
  }

  report.failed = report.regressed > 0 ||
                  (options.fail_on_missing && report.missing > 0);
  return report;
}

void PrintDiffReport(const DiffReport& report, std::FILE* out) {
  std::vector<std::vector<std::string>> cells;
  cells.push_back({"verdict", "bench", "tier", "theta", "metric", "unit",
                   "baseline", "candidate", "delta"});
  for (const DiffRow& row : report.rows) {
    const bool has_base = row.verdict != RowVerdict::kNew;
    const bool has_cand = row.verdict != RowVerdict::kMissing;
    cells.push_back(
        {RowVerdictName(row.verdict), row.bench, row.tier,
         FormatDouble(row.threshold, 2), row.metric, row.unit,
         has_base ? FormatDouble(row.base_value, 6) : "-",
         has_cand ? FormatDouble(row.cand_value, 6) : "-",
         has_base && has_cand ? FormatDouble(row.delta_pct, 1) + "%" : "-"});
  }
  std::vector<size_t> widths(cells.front().size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s  ", PadRight(row[c], widths[c]).c_str());
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out,
               "\n%zu rows: %zu ok, %zu improved, %zu regressed, %zu "
               "missing, %zu new, %zu info (%zu info-unit rows skipped by "
               "gate) -> %s\n",
               report.rows.size(), report.ok, report.improved,
               report.regressed, report.missing, report.added, report.info,
               report.info_skipped, report.failed ? "FAIL" : "PASS");
}

}  // namespace benchdiff
}  // namespace srp
