// srp_repartition — command-line frontend for the re-partitioning framework.
//
// Reads point records from a CSV (lat,lon,field...) or generates one of the
// built-in demo datasets, aggregates them into an m x n grid, runs the
// ML-aware re-partitioning at a given IFL threshold, and writes the result
// as three CSVs:
//   groups.csv     one row per cell-group: rectangle + representative FV
//   cells.csv      one row per grid cell: row, col, group id, null flag
//   adjacency.csv  one row per cell-group: its neighbor ids (Algorithm 3)
//
// Usage:
//   srp_repartition --demo taxi_uni --rows 64 --cols 64 --theta 0.1
//                   --out-dir /tmp/out
//   srp_repartition --input points.csv --schema "price:avg,beds:avg:int"
//                   --rows 96 --cols 96 --theta 0.05 --out-dir /tmp/out
//
// The input CSV must have a header and columns lat,lon,<field...> in schema
// order. Schema entries are name:agg[:int] with agg in {sum, avg, count};
// "count" ignores fields and counts records.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/adjacency.h"
#include "core/kernels/kernels.h"
#include "core/repartitioner.h"
#include "data/datasets.h"
#include "fail/cancellation.h"
#include "fail/checkpoint.h"
#include "grid/grid_builder.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/run_report.h"
#include "obs/tracer.h"
#include "parallel/thread_pool.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace srp {
namespace {

struct CliOptions {
  std::string input;
  std::string demo;
  std::string schema;
  std::string out_dir = ".";
  std::string trace_out;    ///< Chrome trace-event JSON (empty = no tracing)
  std::string metrics_out;  ///< metrics snapshot; ".json" → JSON, else CSV
  std::string report_out;   ///< unified run report JSON (DESIGN.md §9)
  std::string profile_out;  ///< folded sampling-profiler stacks (§10)
  std::string introspect_out;  ///< algorithm-introspection series CSV (§10)
  std::string log_level;  ///< overrides SRP_LOG_LEVEL when non-empty
  std::string log_out;    ///< overrides SRP_LOG_OUT when non-empty
  /// Collect per-phase hardware counters (perf_event; degrades to a printed
  /// unavailable_reason when the syscall is denied).
  bool hw_counters = false;
  bool print_version = false;  ///< --version: print provenance and exit 0
  size_t rows = 64;
  size_t cols = 64;
  double theta = 0.1;
  uint64_t seed = 2022;
  double min_variation_step = 2.5e-3;
  /// 0 = auto (SRP_THREADS env var, else hardware concurrency).
  size_t num_threads = 0;
  /// Wall-clock budget for the re-partitioning run; 0 = unlimited.
  double deadline_ms = 0.0;
  /// With a deadline: return the best partition found so far instead of
  /// failing when the deadline fires mid-run.
  bool best_effort = false;
  /// Durable checkpoint/resume (DESIGN.md §13). Empty dir = off.
  std::string checkpoint_dir;
  /// Accepted iterations between periodic snapshots (interrupt-time
  /// snapshots happen regardless once a dir is set).
  size_t checkpoint_every = 64;
  /// Continue from the newest valid checkpoint in --checkpoint-dir.
  bool resume = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: srp_repartition (--demo KIND | --input CSV --schema "
               "S) [--rows N] [--cols N]\n"
               "                       [--theta T] [--seed S] [--out-dir D] "
               "[--threads N]\n"
               "                       [--trace-out trace.json] "
               "[--metrics-out metrics.csv]\n"
               "                       [--report-out report.json] "
               "[--deadline-ms MS] [--best-effort]\n"
               "                       [--profile-out prof.folded] "
               "[--hw-counters]\n"
               "                       [--introspect-out series.csv] "
               "[--version]\n"
               "                       [--checkpoint-dir D] "
               "[--checkpoint-every N] [--resume]\n"
               "                       [--log-level LEVEL] "
               "[--log-out FILE]\n"
               "  KIND: taxi_uni taxi_multi home_sales vehicles earnings "
               "earnings_uni\n"
               "  S:    comma list of name:agg[:int], agg in "
               "{sum, avg, count}\n"
               "  --threads 0 (default) resolves SRP_THREADS, then hardware "
               "concurrency; 1 = sequential.\n"
               "  --deadline-ms bounds the run's wall time (fails with "
               "DeadlineExceeded when hit);\n"
               "  --best-effort instead returns the best partition found "
               "before the deadline.\n"
               "  --profile-out samples wall-clock stacks into a folded "
               "file (flamegraph.pl / speedscope);\n"
               "  --hw-counters adds per-phase cycle/instruction/cache "
               "counts (perf_event) to the\n"
               "  breakdown and the run report; --introspect-out exports "
               "the per-iteration IFL and\n"
               "  variation series as CSV. --version prints build "
               "provenance and exits.\n"
               "  --checkpoint-dir makes the run durably resumable: a "
               "crash-consistent snapshot is\n"
               "  written every --checkpoint-every accepted iterations "
               "(default 64) and on interrupt;\n"
               "  --resume continues from the newest valid checkpoint, "
               "bit-identically to an\n"
               "  uninterrupted run (validate/inspect with srp_inspect "
               "--checkpoint).\n"
               "  --log-level in {trace, debug, info, warn, error} "
               "(default info; env SRP_LOG_LEVEL);\n"
               "  --log-out writes log records to FILE — '.json'/'.jsonl' "
               "→ JSON lines, '-' → stderr\n"
               "  (env SRP_LOG_OUT). Crash/interrupt postmortems land in "
               "$SRP_POSTMORTEM_DIR (srp_inspect).\n"
               "  Flags accept both --flag value and --flag=value; '_' and "
               "'-' are interchangeable.\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept --flag=value in addition to --flag value, and treat '_' as '-'
    // inside flag names (--trace_out == --trace-out).
    std::string inline_value;
    bool has_inline_value = false;
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline_value = true;
      }
      for (char& ch : arg) {
        if (ch == '_') ch = '-';
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline_value) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return false;
      out->input = v;
    } else if (arg == "--demo") {
      const char* v = next();
      if (v == nullptr) return false;
      out->demo = v;
    } else if (arg == "--schema") {
      const char* v = next();
      if (v == nullptr) return false;
      out->schema = v;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      out->out_dir = v;
    } else if (arg == "--rows") {
      const char* v = next();
      if (v == nullptr) return false;
      out->rows = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--cols") {
      const char* v = next();
      if (v == nullptr) return false;
      out->cols = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--theta") {
      const char* v = next();
      if (v == nullptr) return false;
      out->theta = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      out->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      out->num_threads = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--step") {
      const char* v = next();
      if (v == nullptr) return false;
      out->min_variation_step = std::atof(v);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      out->trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      out->metrics_out = v;
    } else if (arg == "--report-out") {
      const char* v = next();
      if (v == nullptr) return false;
      out->report_out = v;
    } else if (arg == "--profile-out") {
      const char* v = next();
      if (v == nullptr) return false;
      out->profile_out = v;
    } else if (arg == "--introspect-out") {
      const char* v = next();
      if (v == nullptr) return false;
      out->introspect_out = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      if (v == nullptr) return false;
      out->log_level = v;
    } else if (arg == "--log-out") {
      const char* v = next();
      if (v == nullptr) return false;
      out->log_out = v;
    } else if (arg == "--hw-counters") {
      if (has_inline_value) {
        std::fprintf(stderr, "--hw-counters takes no value\n");
        return false;
      }
      out->hw_counters = true;
    } else if (arg == "--version") {
      if (has_inline_value) {
        std::fprintf(stderr, "--version takes no value\n");
        return false;
      }
      out->print_version = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      const auto parsed = ParseDouble(v);
      if (!parsed.ok() || !(*parsed > 0.0)) {
        std::fprintf(stderr, "--deadline-ms needs a positive number\n");
        return false;
      }
      out->deadline_ms = *parsed;
    } else if (arg == "--best-effort") {
      // Boolean flag: takes no value (an inline --best-effort=... is
      // rejected as unknown usage).
      if (has_inline_value) {
        std::fprintf(stderr, "--best-effort takes no value\n");
        return false;
      }
      out->best_effort = true;
    } else if (arg == "--checkpoint-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      out->checkpoint_dir = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      const long long parsed = std::atoll(v);
      if (parsed <= 0) {
        std::fprintf(stderr, "--checkpoint-every needs a positive integer\n");
        return false;
      }
      out->checkpoint_every = static_cast<size_t>(parsed);
    } else if (arg == "--resume") {
      if (has_inline_value) {
        std::fprintf(stderr, "--resume takes no value\n");
        return false;
      }
      out->resume = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (out->print_version) return true;  // no dataset needed to print and exit
  if (out->resume && out->checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return false;
  }
  if (out->demo.empty() == out->input.empty()) {
    std::fprintf(stderr, "exactly one of --demo / --input is required\n");
    return false;
  }
  if (!out->input.empty() && out->schema.empty()) {
    std::fprintf(stderr, "--input requires --schema\n");
    return false;
  }
  return true;
}

Result<DatasetKind> DemoKind(const std::string& name) {
  if (name == "taxi_uni") return DatasetKind::kTaxiTripUni;
  if (name == "taxi_multi") return DatasetKind::kTaxiTripMulti;
  if (name == "home_sales") return DatasetKind::kHomeSalesMulti;
  if (name == "vehicles") return DatasetKind::kVehiclesUni;
  if (name == "earnings") return DatasetKind::kEarningsMulti;
  if (name == "earnings_uni") return DatasetKind::kEarningsUni;
  return Status::InvalidArgument("unknown demo dataset: " + name);
}

Result<std::vector<GridAttributeDef>> ParseSchema(const std::string& schema) {
  std::vector<GridAttributeDef> defs;
  int field_index = 0;
  for (const std::string& entry : Split(schema, ',')) {
    const std::vector<std::string> parts = Split(Trim(entry), ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("bad schema entry: " + entry);
    }
    GridAttributeDef def;
    def.name = parts[0];
    def.is_integer = parts.size() == 3 && parts[2] == "int";
    if (parts[1] == "sum") {
      def.source = GridAttributeDef::Source::kSum;
      def.agg_type = AggType::kSum;
      def.field_index = field_index++;
    } else if (parts[1] == "avg") {
      def.source = GridAttributeDef::Source::kAverage;
      def.agg_type = AggType::kAverage;
      def.field_index = field_index++;
    } else if (parts[1] == "count") {
      def.source = GridAttributeDef::Source::kCount;
      def.agg_type = AggType::kSum;
      def.field_index = -1;
    } else {
      return Status::InvalidArgument("bad aggregation '" + parts[1] +
                                     "' in schema entry: " + entry);
    }
    defs.push_back(std::move(def));
  }
  if (defs.empty()) return Status::InvalidArgument("empty schema");
  return defs;
}

Result<GridDataset> LoadCsvGrid(const CliOptions& options) {
  SRP_ASSIGN_OR_RETURN(CsvTable table, ReadCsv(options.input));
  if (table.num_cols() < 2) {
    return Status::InvalidArgument("CSV needs at least lat,lon columns");
  }
  SRP_ASSIGN_OR_RETURN(std::vector<GridAttributeDef> defs,
                       ParseSchema(options.schema));

  std::vector<PointRecord> records;
  records.reserve(table.num_rows());
  double lat_min = 1e300;
  double lat_max = -1e300;
  double lon_min = 1e300;
  double lon_max = -1e300;
  size_t skipped = 0;  // records with a NaN/Inf coordinate
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const auto cell = [&](size_t col) -> Result<double> {
      auto parsed = ParseDouble(row[col]);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "row " + std::to_string(r + 1) + ", column '" +
            table.header[col] + "': " + parsed.status().message());
      }
      return parsed;
    };
    PointRecord rec;
    SRP_ASSIGN_OR_RETURN(rec.lat, cell(0));
    SRP_ASSIGN_OR_RETURN(rec.lon, cell(1));
    for (size_t i = 2; i < row.size(); ++i) {
      SRP_ASSIGN_OR_RETURN(const double value, cell(i));
      rec.fields.push_back(value);
    }
    // "nan"/"inf" are valid doubles to strtod but poison the extent
    // min/max below; drop such records instead of corrupting the grid.
    if (!std::isfinite(rec.lat) || !std::isfinite(rec.lon)) {
      ++skipped;
      continue;
    }
    lat_min = std::min(lat_min, rec.lat);
    lat_max = std::max(lat_max, rec.lat);
    lon_min = std::min(lon_min, rec.lon);
    lon_max = std::max(lon_max, rec.lon);
    records.push_back(std::move(rec));
  }
  if (skipped > 0) {
    std::fprintf(stderr, "skipped %zu record(s) with non-finite coordinates\n",
                 skipped);
  }
  if (records.empty()) return Status::InvalidArgument("no records in CSV");
  // Nudge the extent so max-edge points land inside.
  const GeoExtent extent{lat_min, lat_max + 1e-9, lon_min, lon_max + 1e-9};
  size_t dropped = 0;
  return BuildGridFromPoints(records, options.rows, options.cols, extent,
                             defs, &dropped);
}

Status WriteOutputs(const CliOptions& options, const GridDataset& grid,
                    const RepartitionResult& result) {
  const Partition& p = result.partition;

  CsvTable groups;
  groups.header = {"group", "r_beg", "r_end", "c_beg", "c_end", "cells",
                   "null"};
  for (const auto& attr : grid.attributes()) groups.header.push_back(attr.name);
  for (size_t g = 0; g < p.num_groups(); ++g) {
    const CellGroup& cg = p.groups[g];
    std::vector<std::string> row = {
        std::to_string(g),          std::to_string(cg.r_beg),
        std::to_string(cg.r_end),   std::to_string(cg.c_beg),
        std::to_string(cg.c_end),   std::to_string(cg.NumCells()),
        std::to_string(static_cast<int>(p.group_null[g]))};
    for (size_t k = 0; k < grid.num_attributes(); ++k) {
      row.push_back(FormatDouble(p.features[g][k], 6));
    }
    groups.rows.push_back(std::move(row));
  }
  SRP_RETURN_IF_ERROR(WriteCsv(groups, options.out_dir + "/groups.csv"));

  CsvTable cells;
  cells.header = {"row", "col", "group", "null"};
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      cells.rows.push_back({std::to_string(r), std::to_string(c),
                            std::to_string(p.GroupOf(r, c)),
                            std::to_string(grid.IsNull(r, c) ? 1 : 0)});
    }
  }
  SRP_RETURN_IF_ERROR(WriteCsv(cells, options.out_dir + "/cells.csv"));

  CsvTable adjacency;
  adjacency.header = {"group", "neighbors"};
  const auto neighbors = BuildAdjacencyList(p);
  for (size_t g = 0; g < neighbors.size(); ++g) {
    std::vector<std::string> ids;
    ids.reserve(neighbors[g].size());
    for (int32_t n : neighbors[g]) ids.push_back(std::to_string(n));
    adjacency.rows.push_back({std::to_string(g), Join(ids, " ")});
  }
  return WriteCsv(adjacency, options.out_dir + "/adjacency.csv");
}

void PrintRunStats(const RepartitionResult& result,
                   const CliOptions& options) {
  const RunStats& stats = result.stats;
  const double total = result.elapsed_seconds;
  // The alloc column is each phase's allocation high-water above its entry
  // level (srp_memtrack); all zeros when the hooks are not linked in. With
  // --hw-counters and a live perf group, an instructions-per-cycle column
  // shows where the driver thread stalls.
  const bool hw = stats.hw_counters_collected;
  std::printf("\nphase breakdown (of %.3fs total):\n", total);
  std::printf("  %-18s %10s %6s %12s%s\n", "phase", "time", "share", "alloc",
              hw ? "    ipc" : "");
  const auto row = [total, hw](const char* name, double seconds,
                               int64_t peak_bytes,
                               const obs::HwCounterValues& counters) {
    std::printf("  %-18s %9.4fs %5.1f%% %9.2fMiB", name, seconds,
                total > 0.0 ? 100.0 * seconds / total : 0.0,
                static_cast<double>(peak_bytes) / (1024.0 * 1024.0));
    if (hw) {
      std::printf(" %6.2f", counters.InstructionsPerCycle());
    }
    std::printf("\n");
  };
  row("normalize", stats.normalize_seconds, stats.normalize_peak_bytes,
      stats.normalize_hw);
  row("pair variations", stats.pair_variation_seconds,
      stats.pair_variation_peak_bytes, stats.pair_variation_hw);
  row("heap build", stats.heap_build_seconds, stats.heap_build_peak_bytes,
      stats.heap_build_hw);
  row("variation pop", stats.variation_pop_seconds,
      stats.variation_pop_peak_bytes, stats.variation_pop_hw);
  row("extract", stats.extract_seconds, stats.extract_peak_bytes,
      stats.extract_hw);
  row("allocate features", stats.allocate_seconds, stats.allocate_peak_bytes,
      stats.allocate_hw);
  row("information loss", stats.information_loss_seconds,
      stats.information_loss_peak_bytes, stats.information_loss_hw);
  row("accounted", stats.PhaseTotalSeconds(), stats.MaxPhasePeakBytes(),
      stats.TotalHwCounters());
  std::printf("  heap pops %zu, extractions %zu\n", stats.heap_pops,
              stats.extractions);
  if (options.hw_counters && !hw) {
    std::printf("  hw counters unavailable: %s\n",
                stats.hw_unavailable_reason.c_str());
  }
  if (options.deadline_ms > 0.0) {
    std::printf("  deadline %.1fms (%s): %s\n", options.deadline_ms,
                options.best_effort ? "best-effort" : "strict",
                stats.interrupted ? "HIT - returned best partition so far"
                                  : "met");
  }
}

/// --report-out: one JSON document holding everything this run produced —
/// provenance, config echo, per-phase time + allocation high-water (+ hw
/// counters when collected), pool utilization, outcome, headline results,
/// introspection series, metrics, span tree.
Status WriteRunReport(const CliOptions& options, const GridDataset& grid,
                      const RepartitionResult& result,
                      const obs::IntrospectionRecord* introspection) {
  obs::RunReport report("srp_repartition");
  if (!options.demo.empty()) {
    report.SetConfig("demo", options.demo);
  } else {
    report.SetConfig("input", options.input);
    report.SetConfig("schema", options.schema);
  }
  report.SetConfig("rows", static_cast<uint64_t>(options.rows));
  report.SetConfig("cols", static_cast<uint64_t>(options.cols));
  report.SetConfig("theta", options.theta);
  report.SetConfig("seed", options.seed);
  report.SetConfig("min_variation_step", options.min_variation_step);
  report.SetConfig("num_threads",
                   static_cast<uint64_t>(ResolveThreadCount(
                       options.num_threads)));
  report.SetConfig("deadline_ms", options.deadline_ms);
  report.SetConfig("best_effort", options.best_effort);
  if (!options.checkpoint_dir.empty()) {
    report.SetConfig("checkpoint_dir", options.checkpoint_dir);
    report.SetConfig("checkpoint_every",
                     static_cast<uint64_t>(options.checkpoint_every));
    report.SetConfig("resume", options.resume);
  }

  report.SetConfig("hw_counters", options.hw_counters);

  const RunStats& stats = result.stats;
  if (stats.hw_counters_collected) {
    report.AddPhase("normalize", stats.normalize_seconds,
                    stats.normalize_peak_bytes, stats.normalize_hw);
    report.AddPhase("pair_variations", stats.pair_variation_seconds,
                    stats.pair_variation_peak_bytes, stats.pair_variation_hw);
    report.AddPhase("heap_build", stats.heap_build_seconds,
                    stats.heap_build_peak_bytes, stats.heap_build_hw);
    report.AddPhase("variation_pop", stats.variation_pop_seconds,
                    stats.variation_pop_peak_bytes, stats.variation_pop_hw);
    report.AddPhase("extract", stats.extract_seconds, stats.extract_peak_bytes,
                    stats.extract_hw);
    report.AddPhase("allocate_features", stats.allocate_seconds,
                    stats.allocate_peak_bytes, stats.allocate_hw);
    report.AddPhase("information_loss", stats.information_loss_seconds,
                    stats.information_loss_peak_bytes,
                    stats.information_loss_hw);
  } else {
    report.AddPhase("normalize", stats.normalize_seconds,
                    stats.normalize_peak_bytes);
    report.AddPhase("pair_variations", stats.pair_variation_seconds,
                    stats.pair_variation_peak_bytes);
    report.AddPhase("heap_build", stats.heap_build_seconds,
                    stats.heap_build_peak_bytes);
    report.AddPhase("variation_pop", stats.variation_pop_seconds,
                    stats.variation_pop_peak_bytes);
    report.AddPhase("extract", stats.extract_seconds,
                    stats.extract_peak_bytes);
    report.AddPhase("allocate_features", stats.allocate_seconds,
                    stats.allocate_peak_bytes);
    report.AddPhase("information_loss", stats.information_loss_seconds,
                    stats.information_loss_peak_bytes);
  }
  if (options.hw_counters) {
    report.SetHwCounterStatus(stats.hw_counters_collected,
                              stats.hw_unavailable_reason);
    if (stats.hw_counters_collected) {
      report.SetHwTotals(stats.TotalHwCounters());
    }
  }
  if (stats.pool_size > 0) {
    obs::RunReportPool pool;
    pool.size = stats.pool_size;
    pool.tasks_executed = stats.pool_tasks_executed;
    pool.queue_depth_high_water = stats.pool_queue_depth_high_water;
    pool.worker_busy_ns = stats.pool_worker_busy_ns;
    report.SetPool(pool);
  }
  report.SetOutcome(
      true, stats.interrupted,
      stats.interrupted ? "deadline hit - best partition so far" : "");

  report.SetResult("grid_rows", static_cast<uint64_t>(grid.rows()));
  report.SetResult("grid_cols", static_cast<uint64_t>(grid.cols()));
  report.SetResult("valid_cells",
                   static_cast<uint64_t>(grid.NumValidCells()));
  report.SetResult("groups",
                   static_cast<uint64_t>(result.partition.num_groups()));
  report.SetResult("iterations", static_cast<uint64_t>(result.iterations));
  report.SetResult("information_loss", result.information_loss);
  report.SetResult("cell_ratio", result.CellRatio());
  report.SetResult("elapsed_seconds", result.elapsed_seconds);
  if (stats.resumed) {
    report.SetResult("resumed_iterations",
                     static_cast<uint64_t>(stats.resumed_iterations));
  }
  const int64_t checkpoint_generation = obs::Journal::checkpoint_generation();
  if (checkpoint_generation >= 0) {
    report.SetResult("checkpoint_generation",
                     static_cast<uint64_t>(checkpoint_generation));
  }

  if (introspection != nullptr) {
    report.SetIntrospection(introspection->ToJson());
  }

  obs::MetricsRegistry::Get().UpdateMemoryGauges();
  report.CaptureMetrics();
  report.CaptureTracer();
  return report.WriteJson(options.report_out);
}

int Run(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    Usage();
    return 2;
  }

  // Env first, flags override; then arm the flight recorder so any crash or
  // interrupt from here on leaves a postmortem in $SRP_POSTMORTEM_DIR.
  ConfigureLoggingFromEnv();
  if (!options.log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(options.log_level, &level)) {
      std::fprintf(stderr, "invalid --log-level: %s\n",
                   options.log_level.c_str());
      return 2;
    }
    SetLogLevel(level);
  }
  if (!options.log_out.empty()) {
    const Status status = InstallLogFile(options.log_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 2;
    }
  }
  SRP_CHECK_OK(obs::FlightRecorder::Install());

  if (options.print_version) {
    const obs::RunReportProvenance provenance = obs::BuildProvenance();
    std::printf("srp_repartition %s (%s build, %s)\n",
                provenance.git_sha.c_str(), provenance.build_type.c_str(),
                provenance.compiler.c_str());
    std::printf("simd: %s (avx2 %s; override with SRP_SIMD=scalar|avx2)\n",
                kernels::SimdLevelName(kernels::ActiveSimdLevel()),
                kernels::Avx2Supported() ? "supported" : "unavailable");
    return 0;
  }

  Result<GridDataset> grid = Status::Internal("unset");
  if (!options.demo.empty()) {
    auto kind = DemoKind(options.demo);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    DatasetOptions data_options;
    data_options.rows = options.rows;
    data_options.cols = options.cols;
    data_options.seed = options.seed;
    grid = GenerateDataset(*kind, data_options);
  } else {
    grid = LoadCsvGrid(options);
  }
  if (!grid.ok()) {
    std::fprintf(stderr, "failed to build grid: %s\n",
                 grid.status().ToString().c_str());
    return 1;
  }

  if (!options.trace_out.empty()) {
    obs::Tracer::Get().Enable();
  }

  RepartitionOptions ropt;
  ropt.ifl_threshold = options.theta;
  ropt.min_variation_step = options.min_variation_step;
  ropt.num_threads = options.num_threads;
  ropt.hw_counters = options.hw_counters;
  // Recording costs a few appends per iteration, so it is attached only
  // when some output will carry the series (CSV export or the v2 report).
  obs::RecordingIntrospectionSink introspection;
  const bool record_introspection =
      !options.introspect_out.empty() || !options.report_out.empty();
  if (record_introspection) ropt.introspection = &introspection;
  RunContext ctx;
  const RunContext* ctx_ptr = nullptr;
  if (options.deadline_ms > 0.0) {
    ctx.set_deadline_after_seconds(options.deadline_ms / 1e3);
    ctx.set_best_effort(options.best_effort);
    ctx_ptr = &ctx;
  }

  // Durable checkpointing: the writer stamps every snapshot with the
  // (dataset, merge-options) fingerprints so --resume can refuse a
  // checkpoint from a different run setup.
  std::optional<CheckpointWriter> checkpoint_writer;
  StoredCheckpoint resume_state;
  if (!options.checkpoint_dir.empty()) {
    CheckpointWriter::Options ckpt;
    ckpt.directory = options.checkpoint_dir;
    ckpt.grid_fingerprint = GridFingerprint(*grid);
    ckpt.options_fingerprint = OptionsFingerprint(ropt);
    checkpoint_writer.emplace(ckpt);
    if (const Status s = checkpoint_writer->Init(); !s.ok()) {
      std::fprintf(stderr, "checkpoint setup failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    ropt.checkpoint = &*checkpoint_writer;
    ropt.checkpoint_every = options.checkpoint_every;
    if (options.resume) {
      auto loaded = LoadLatestCheckpoint(options.checkpoint_dir);
      if (loaded.ok()) {
        if (const Status s = ValidateStoredCheckpoint(*loaded, *grid, ropt);
            !s.ok()) {
          std::fprintf(stderr, "cannot resume: %s\n", s.ToString().c_str());
          return 1;
        }
        resume_state = std::move(*loaded);
        ropt.resume_from = &resume_state.state;
        std::printf(
            "resuming from checkpoint generation %llu "
            "(iteration %zu, %zu groups)\n",
            static_cast<unsigned long long>(resume_state.state.generation),
            resume_state.state.iterations,
            resume_state.state.partition.num_groups());
      } else {
        std::printf("no resumable checkpoint (%s); starting fresh\n",
                    loaded.status().message().c_str());
      }
    }
  }

  // The sampling profiler covers exactly the re-partitioning run (grid
  // building and CSV export stay out of the profile).
  obs::SamplingProfiler profiler;
  if (!options.profile_out.empty()) {
    if (const Status s = profiler.Start(); !s.ok()) {
      std::fprintf(stderr, "profiler start failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  auto result = Repartitioner(ropt).Run(*grid, ctx_ptr);
  if (profiler.running()) (void)profiler.Stop();
  if (!result.ok()) {
    std::fprintf(stderr, "repartition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (auto s = WriteOutputs(options, *grid, *result); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "grid %zux%zu (%zu valid cells) -> %zu cell-groups "
      "(%.1f%% reduction)\n"
      "information loss %.4f (threshold %.2f), %zu iterations, %.3fs, "
      "%zu thread(s)\n"
      "wrote %s/{groups,cells,adjacency}.csv\n",
      grid->rows(), grid->cols(), grid->NumValidCells(),
      result->partition.num_groups(),
      100.0 * (1.0 - result->CellRatio()), result->information_loss,
      options.theta, result->iterations, result->elapsed_seconds,
      ResolveThreadCount(options.num_threads), options.out_dir.c_str());
  if (result->stats.interrupted) {
    std::printf("NOTE: run interrupted by the %.1fms deadline; partition is "
                "the best found so far\n",
                options.deadline_ms);
  }
  if (checkpoint_writer.has_value() &&
      checkpoint_writer->latest_generation() >= 0) {
    std::printf("checkpoint generation %lld durable in %s (resume with "
                "--resume)\n",
                static_cast<long long>(checkpoint_writer->latest_generation()),
                options.checkpoint_dir.c_str());
  }
  PrintRunStats(*result, options);

  if (!options.trace_out.empty()) {
    obs::Tracer::Get().Disable();
    const Status s = obs::Tracer::Get().WriteChromeTrace(options.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote Chrome trace to %s (%zu spans, %zu dropped)\n",
                options.trace_out.c_str(),
                obs::Tracer::Get().Snapshot().size(),
                obs::Tracer::Get().dropped());
  }
  if (!options.metrics_out.empty()) {
    auto& registry = obs::MetricsRegistry::Get();
    registry.UpdateMemoryGauges();
    const std::string& path = options.metrics_out;
    const bool json =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    const Status s =
        json ? registry.WriteJson(path) : registry.WriteCsv(path);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", path.c_str());
  }
  if (!options.profile_out.empty()) {
    if (const Status s = profiler.WriteFolded(options.profile_out); !s.ok()) {
      std::fprintf(stderr, "profile export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu folded stack sample(s) to %s (%zu dropped)\n",
                profiler.CollectedSamples(), options.profile_out.c_str(),
                profiler.DroppedSamples());
  }
  if (!options.introspect_out.empty()) {
    if (const Status s =
            introspection.record().WriteCsv(options.introspect_out);
        !s.ok()) {
      std::fprintf(stderr, "introspection export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote introspection series to %s (%zu iterations)\n",
                options.introspect_out.c_str(),
                introspection.record().ifl_series.size());
  }
  if (!options.report_out.empty()) {
    // After the trace-out block so an enabled tracer is already disabled
    // and its ring is stable when the report captures the span tree.
    if (auto s = WriteRunReport(
            options, *grid, *result,
            record_introspection ? &introspection.record() : nullptr);
        !s.ok()) {
      std::fprintf(stderr, "report export failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote run report to %s\n", options.report_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace srp

int main(int argc, char** argv) { return srp::Run(argc, argv); }
