#include "bench_trend.h"

#include <cmath>
#include <map>
#include <utility>

#include "util/string_util.h"

namespace srp {
namespace benchdiff {

TrendTable BuildTrendTable(const std::vector<TrendRun>& runs) {
  TrendTable table;
  table.run_labels.reserve(runs.size());
  for (const TrendRun& run : runs) table.run_labels.push_back(run.label);

  std::map<std::string, size_t> row_index;
  for (size_t r = 0; r < runs.size(); ++r) {
    for (const ParsedBenchRow& row : runs[r].rows) {
      const std::string key = BenchRowKey(row);
      auto [it, inserted] = row_index.emplace(key, table.rows.size());
      if (inserted) {
        TrendTable::Row out;
        out.bench = row.bench;
        out.tier = row.tier;
        out.threshold = row.threshold;
        out.metric = row.metric;
        out.unit = row.unit;
        out.values.assign(runs.size(), 0.0);
        out.present.assign(runs.size(), false);
        table.rows.push_back(std::move(out));
      }
      TrendTable::Row& out = table.rows[it->second];
      out.values[r] = row.value;  // last value wins, as in DiffBenchRows
      out.present[r] = true;
    }
  }
  return table;
}

namespace {

/// Markdown cells may not contain pipes; bench/tier names are simple
/// identifiers today, but keep the table well-formed regardless.
std::string MarkdownEscape(const std::string& cell) {
  std::string out;
  out.reserve(cell.size());
  for (char c : cell) {
    if (c == '|') {
      out += "\\|";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void PrintTrendMarkdown(const TrendTable& table, std::FILE* out) {
  const size_t num_runs = table.run_labels.size();
  const bool with_delta = num_runs >= 2;

  std::fprintf(out, "| bench | tier | theta | metric | unit |");
  for (const std::string& label : table.run_labels) {
    std::fprintf(out, " %s |", MarkdownEscape(label).c_str());
  }
  if (with_delta) std::fprintf(out, " delta |");
  std::fprintf(out, "\n");

  std::fprintf(out, "| --- | --- | --- | --- | --- |");
  for (size_t r = 0; r < num_runs; ++r) std::fprintf(out, " ---: |");
  if (with_delta) std::fprintf(out, " ---: |");
  std::fprintf(out, "\n");

  for (const TrendTable::Row& row : table.rows) {
    std::fprintf(out, "| %s | %s | %s | %s | %s |",
                 MarkdownEscape(row.bench).c_str(),
                 MarkdownEscape(row.tier).c_str(),
                 FormatDouble(row.threshold, 2).c_str(),
                 MarkdownEscape(row.metric).c_str(),
                 MarkdownEscape(row.unit).c_str());
    for (size_t r = 0; r < num_runs; ++r) {
      if (row.present[r]) {
        std::fprintf(out, " %s |", FormatDouble(row.values[r], 6).c_str());
      } else {
        std::fprintf(out, " - |");
      }
    }
    if (with_delta) {
      // First-to-last percent change across the runs that actually recorded
      // the row, so a metric added mid-series still gets a trend.
      size_t first = num_runs;
      size_t last = num_runs;
      for (size_t r = 0; r < num_runs; ++r) {
        if (!row.present[r]) continue;
        if (first == num_runs) first = r;
        last = r;
      }
      if (first == num_runs || first == last ||
          std::abs(row.values[first]) < 1e-300) {
        std::fprintf(out, " - |");
      } else {
        const double pct = 100.0 * (row.values[last] - row.values[first]) /
                           std::abs(row.values[first]);
        std::fprintf(out, " %s%% |", FormatDouble(pct, 1).c_str());
      }
    }
    std::fprintf(out, "\n");
  }
}

}  // namespace benchdiff
}  // namespace srp
