// Postmortem + checkpoint inspector (DESIGN.md §11, §13): pretty-prints,
// merges, validates, and re-exports the flight recorder's postmortem dumps,
// and summarizes/validates durable checkpoint files.
//
//   srp_inspect dump.json...                 # per-file summary + journal tail
//   srp_inspect --validate dump.json...      # schema check only
//   srp_inspect --merge dump.json...         # one seq-ordered timeline
//   srp_inspect --trace-out t.json dump.json # journal events as a Chrome trace
//   srp_inspect --checkpoint ckpt-*.srpckpt  # checkpoint summary + CRC check
//   srp_inspect --version                    # build provenance, exit 0
//
// Exit codes: 0 = everything valid, 2 = usage error or unreadable/invalid
// input, 1 = an output (e.g. --trace-out) could not be written.
//
// The Chrome trace export turns every journal event into an instant event on
// its thread's track, so a postmortem can be laid side by side with a
// --trace-out span trace from the same run (both use monotonic time).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fail/checkpoint.h"
#include "obs/flight_recorder.h"
#include "obs/run_report.h"
#include "util/json.h"
#include "util/status.h"

namespace srp {
namespace {

struct InspectOptions {
  bool validate_only = false;
  bool merge = false;
  bool checkpoint_mode = false;  ///< inputs are .srpckpt checkpoint files
  bool print_version = false;    ///< print provenance and exit 0
  std::string trace_out;
  std::vector<std::string> files;
  size_t tail = 20;  ///< journal events shown per summary
};

/// One journal event, re-parsed from a postmortem document.
struct ParsedEvent {
  uint64_t seq = 0;
  int64_t ts_ns = 0;
  uint32_t tid = 0;
  std::string thread_label;
  std::string kind;
  std::string text;
  std::string source;  ///< file the event came from (for --merge)
};

int UsageError(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--validate] [--merge] [--tail N] "
               "[--trace-out out.json] postmortem.json...\n"
               "       %s --checkpoint [--validate] ckpt-*.srpckpt...\n"
               "       %s --version\n",
               argv0, argv0, argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, InspectOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      options->validate_only = true;
    } else if (arg == "--merge") {
      options->merge = true;
    } else if (arg == "--checkpoint") {
      options->checkpoint_mode = true;
    } else if (arg == "--version") {
      options->print_version = true;
    } else if (arg == "--tail") {
      if (++i >= argc) return false;
      options->tail = static_cast<size_t>(std::atol(argv[i]));
    } else if (arg == "--trace-out") {
      if (++i >= argc) return false;
      options->trace_out = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      options->files.push_back(arg);
    }
  }
  return options->print_version || !options->files.empty();
}

Result<JsonValue> LoadPostmortem(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return JsonValue::Parse(content.str());
}

std::string FieldString(const JsonValue& doc, const char* dotted_path) {
  const JsonValue* value = doc.FindPath(dotted_path);
  return value != nullptr && value->is_string() ? value->string_value() : "";
}

double FieldNumber(const JsonValue& doc, const char* dotted_path) {
  const JsonValue* value = doc.FindPath(dotted_path);
  return value != nullptr ? value->number_value() : 0.0;
}

std::vector<ParsedEvent> ExtractEvents(const JsonValue& doc,
                                       const std::string& source) {
  std::vector<ParsedEvent> events;
  const JsonValue* threads = doc.FindPath("journal.threads");
  if (threads == nullptr || !threads->is_array()) return events;
  for (const JsonValue& thread : threads->items()) {
    const JsonValue* tid = thread.Find("tid");
    const JsonValue* label = thread.Find("label");
    const JsonValue* thread_events = thread.Find("events");
    if (thread_events == nullptr || !thread_events->is_array()) continue;
    for (const JsonValue& e : thread_events->items()) {
      ParsedEvent event;
      event.seq = static_cast<uint64_t>(
          e.Find("seq") != nullptr ? e.Find("seq")->number_value() : 0);
      event.ts_ns = static_cast<int64_t>(
          e.Find("ts_ns") != nullptr ? e.Find("ts_ns")->number_value() : 0);
      event.tid = static_cast<uint32_t>(
          tid != nullptr ? tid->number_value() : 0);
      event.thread_label =
          label != nullptr && label->is_string() ? label->string_value() : "";
      event.kind =
          e.Find("kind") != nullptr ? e.Find("kind")->string_value() : "";
      event.text =
          e.Find("text") != nullptr ? e.Find("text")->string_value() : "";
      event.source = source;
      events.push_back(std::move(event));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ParsedEvent& a, const ParsedEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

void PrintEvent(const ParsedEvent& event, int64_t epoch_ns, bool with_source) {
  const double rel_ms =
      static_cast<double>(event.ts_ns - epoch_ns) / 1e6;
  std::string thread = event.thread_label.empty()
                           ? "tid" + std::to_string(event.tid)
                           : event.thread_label;
  std::printf("  %6llu %+11.3fms %-12s %-10s %s",
              static_cast<unsigned long long>(event.seq), rel_ms,
              thread.c_str(), event.kind.c_str(), event.text.c_str());
  if (with_source) std::printf("  [%s]", event.source.c_str());
  std::printf("\n");
}

void PrintSummary(const std::string& path, const JsonValue& doc,
                  size_t tail) {
  std::printf("== %s\n", path.c_str());
  std::printf("  kind:       %s\n", FieldString(doc, "kind").c_str());
  std::printf("  cause:      %s\n", FieldString(doc, "cause").c_str());
  const std::string kind = FieldString(doc, "kind");
  if (kind == "interrupt") {
    std::printf("  interrupt:  %s\n",
                FieldString(doc, "interrupt.kind_name").c_str());
  } else {
    std::printf("  signal:     %s (%d), fault_addr %s\n",
                FieldString(doc, "signal.name").c_str(),
                static_cast<int>(FieldNumber(doc, "signal.number")),
                FieldString(doc, "signal.fault_addr").c_str());
  }
  const std::string crash_cause = FieldString(doc, "crash_cause");
  if (!crash_cause.empty()) {
    std::printf("  check:      %s\n", crash_cause.c_str());
  }
  std::printf("  thread:     tid %d%s%s\n",
              static_cast<int>(FieldNumber(doc, "thread.tid")),
              FieldString(doc, "thread.label").empty() ? "" : " ",
              FieldString(doc, "thread.label").c_str());
  std::printf("  phase:      %s\n", FieldString(doc, "phase").c_str());
  if (doc.Find("checkpoint") != nullptr) {
    std::printf("  checkpoint: generation %lld durable at dump time "
                "(resume candidate)\n",
                static_cast<long long>(
                    FieldNumber(doc, "checkpoint.generation")));
  }
  std::printf("  build:      %s %s (%s)\n",
              FieldString(doc, "provenance.git_sha").c_str(),
              FieldString(doc, "provenance.build_type").c_str(),
              FieldString(doc, "provenance.compiler").c_str());

  const JsonValue* backtrace = doc.Find("backtrace");
  if (backtrace != nullptr && backtrace->is_array() && backtrace->size() > 0) {
    std::printf("  backtrace (%zu frames, top 5):\n", backtrace->size());
    for (size_t i = 0; i < std::min<size_t>(5, backtrace->size()); ++i) {
      std::printf("    #%zu %s\n", i, backtrace->at(i).string_value().c_str());
    }
  }

  const std::vector<ParsedEvent> events = ExtractEvents(doc, path);
  std::printf("  journal:    %llu events total, %llu retained",
              static_cast<unsigned long long>(
                  FieldNumber(doc, "journal.total_events")),
              static_cast<unsigned long long>(events.size()));
  const double dropped = FieldNumber(doc, "journal.dropped_thread_events");
  if (dropped > 0) std::printf(", %g dropped (thread arena full)", dropped);
  std::printf("\n");
  if (!events.empty()) {
    const size_t shown = std::min(tail, events.size());
    const int64_t last_ts = events.back().ts_ns;
    std::printf("  last %zu events (ms relative to the final event):\n",
                shown);
    for (size_t i = events.size() - shown; i < events.size(); ++i) {
      PrintEvent(events[i], last_ts, /*with_source=*/false);
    }
  }
}

void AppendTraceJsonEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

/// Chrome trace export: one process per input file, one instant event per
/// journal event, timestamps relative to the file's earliest event.
Status WriteTrace(const std::string& path,
                  const std::vector<std::vector<ParsedEvent>>& per_file,
                  const std::vector<std::string>& files) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (size_t f = 0; f < per_file.size(); ++f) {
    const std::vector<ParsedEvent>& events = per_file[f];
    if (events.empty()) continue;
    int64_t epoch = events.front().ts_ns;
    for (const ParsedEvent& event : events) {
      epoch = std::min(epoch, event.ts_ns);
    }
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(f + 1) + ",\"args\":{\"name\":\"";
    AppendTraceJsonEscaped(&out, files[f]);
    out += "\"}}";
    for (const ParsedEvent& event : events) {
      out += ",\n{\"name\":\"";
      AppendTraceJsonEscaped(&out, event.kind + ": " + event.text);
      out += "\",\"cat\":\"journal\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      char ts[32];
      std::snprintf(ts, sizeof(ts), "%.3f",
                    static_cast<double>(event.ts_ns - epoch) / 1e3);
      out += ts;
      out += ",\"pid\":" + std::to_string(f + 1) +
             ",\"tid\":" + std::to_string(event.tid) + ",\"args\":{\"seq\":" +
             std::to_string(event.seq) + "}}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != out.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

/// --checkpoint mode: per-file summary (or --validate one-liners). A file
/// failing magic/framing/CRC checks, or carrying structurally impossible
/// state, is reported and counts as invalid input (exit 2).
int RunCheckpointMode(const InspectOptions& options) {
  bool all_valid = true;
  for (const std::string& path : options.files) {
    Result<StoredCheckpoint> loaded = ReadCheckpointFile(path);
    if (!loaded.ok()) {
      if (options.validate_only) {
        std::printf("%s: %s\n", path.c_str(),
                    loaded.status().ToString().c_str());
      } else {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     loaded.status().ToString().c_str());
      }
      all_valid = false;
      continue;
    }
    const StoredCheckpoint& stored = *loaded;
    if (options.validate_only) {
      std::printf("%s: OK\n", path.c_str());
      continue;
    }
    const RepartitionCheckpoint& state = stored.state;
    std::printf("== %s\n", path.c_str());
    std::printf("  generation:       %llu\n",
                static_cast<unsigned long long>(state.generation));
    std::printf("  iterations:       %zu\n", state.iterations);
    std::printf("  partition:        %zux%zu cells -> %zu groups\n",
                state.partition.rows, state.partition.cols,
                state.partition.num_groups());
    std::printf("  information loss: %.6f\n", state.information_loss);
    std::printf("  last variation:   %.6f (pop threshold state %.6f)\n",
                state.final_min_adjacent_variation, state.previous_variation);
    std::printf("  grid fp:          %016llx\n",
                static_cast<unsigned long long>(stored.grid_fingerprint));
    std::printf("  options fp:       %016llx\n",
                static_cast<unsigned long long>(stored.options_fingerprint));
    std::printf("  sections:         CRC-verified (META GRPS CMAP FEAT GMET "
                "END)\n");
  }
  return all_valid ? 0 : 2;
}

int Run(int argc, char** argv) {
  InspectOptions options;
  if (!ParseArgs(argc, argv, &options)) return UsageError(argv[0]);

  if (options.print_version) {
    const obs::RunReportProvenance provenance = obs::BuildProvenance();
    std::printf("srp_inspect %s (%s build, %s)\n", provenance.git_sha.c_str(),
                provenance.build_type.c_str(), provenance.compiler.c_str());
    return 0;
  }
  if (options.checkpoint_mode) return RunCheckpointMode(options);

  std::vector<JsonValue> docs;
  std::vector<std::string> valid_paths;
  std::vector<std::vector<ParsedEvent>> per_file_events;
  bool all_valid = true;
  for (const std::string& path : options.files) {
    Result<JsonValue> parsed = LoadPostmortem(path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      all_valid = false;
      continue;
    }
    const Status valid = obs::ValidatePostmortemJson(*parsed);
    if (options.validate_only) {
      std::printf("%s: %s\n", path.c_str(),
                  valid.ok() ? "OK" : valid.ToString().c_str());
    } else if (!valid.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   valid.ToString().c_str());
    }
    if (!valid.ok()) {
      all_valid = false;
      continue;
    }
    per_file_events.push_back(ExtractEvents(*parsed, path));
    valid_paths.push_back(path);
    docs.push_back(std::move(*parsed));
  }

  if (!options.validate_only) {
    if (options.merge) {
      std::vector<ParsedEvent> merged;
      for (const auto& events : per_file_events) {
        merged.insert(merged.end(), events.begin(), events.end());
      }
      std::sort(merged.begin(), merged.end(),
                [](const ParsedEvent& a, const ParsedEvent& b) {
                  return a.seq < b.seq;
                });
      std::printf("== merged timeline: %zu events from %zu dumps\n",
                  merged.size(), docs.size());
      const int64_t epoch = merged.empty() ? 0 : merged.front().ts_ns;
      const bool with_source = docs.size() > 1;
      for (const ParsedEvent& event : merged) {
        PrintEvent(event, epoch, with_source);
      }
    } else {
      for (size_t i = 0; i < docs.size(); ++i) {
        PrintSummary(valid_paths[i], docs[i], options.tail);
      }
    }
  }

  if (!options.trace_out.empty() && !docs.empty()) {
    const Status status =
        WriteTrace(options.trace_out, per_file_events, valid_paths);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.trace_out.c_str());
  }

  // 2, not 1: unreadable or schema-invalid INPUT is the caller's problem
  // (same class as a usage error); 1 is reserved for failures producing
  // OUTPUT (the --trace-out branch above).
  return all_valid ? 0 : 2;
}

}  // namespace
}  // namespace srp

int main(int argc, char** argv) { return srp::Run(argc, argv); }
