#ifndef SRP_TOOLS_BENCH_TREND_H_
#define SRP_TOOLS_BENCH_TREND_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_diff.h"

namespace srp {
namespace benchdiff {

/// One labelled set of bench rows, typically one BENCH_*.json artifact (or
/// a directory of them) from one CI run.
struct TrendRun {
  std::string label;
  std::vector<ParsedBenchRow> rows;
};

/// A metric-vs-run matrix: one row per distinct BenchRowKey across all runs
/// (first-seen order), one value column per run.
struct TrendTable {
  struct Row {
    std::string bench;
    std::string tier;
    double threshold = 0.0;
    std::string metric;
    std::string unit;
    std::vector<double> values;  ///< one slot per run, valid iff present
    std::vector<bool> present;
  };
  std::vector<std::string> run_labels;
  std::vector<Row> rows;
};

/// Merges the runs into a trend table. Rows are matched across runs with the
/// same BenchRowKey the diff gate uses; when a run records the same key more
/// than once the last value wins (matching DiffBenchRows' candidate map).
TrendTable BuildTrendTable(const std::vector<TrendRun>& runs);

/// Renders the table as GitHub-flavored markdown. Missing cells print "-";
/// the trailing delta column compares each row's last present value against
/// its first (omitted with fewer than two runs).
void PrintTrendMarkdown(const TrendTable& table, std::FILE* out);

}  // namespace benchdiff
}  // namespace srp

#endif  // SRP_TOOLS_BENCH_TREND_H_
