// Bench trend table: merges N BENCH_*.json artifacts (one per CI run) into
// a single markdown metric-vs-run table, so a slow drift that never trips
// the srp_bench_diff gate in any single step is still visible.
//
// Usage:
//   srp_bench_trend [--out=FILE] <artifact> [<artifact>...]
//
// Each <artifact> is a BENCH_*.json file or a directory of them; column
// order follows the command line (pass runs oldest-first so the delta
// column reads first-to-last). Labels default to the file basename with
// the BENCH_ prefix and .json suffix stripped; override per-artifact with
// label=path. Exit codes: 0 ok, 2 bad usage / IO error.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_trend.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: srp_bench_trend [--out=FILE] <artifact> "
               "[<artifact>...]\n"
               "  <artifact>: BENCH_*.json file or directory, optionally "
               "prefixed label=\n"
               "flags:\n"
               "  --out=FILE  write the markdown table to FILE instead of "
               "stdout\n");
}

/// BENCH_fig5.json -> fig5; bench/ -> bench; label= prefixes win outright.
std::string LabelForArtifact(const std::string& spec, std::string* path) {
  const size_t eq = spec.find('=');
  if (eq != std::string::npos && eq > 0) {
    *path = spec.substr(eq + 1);
    return spec.substr(0, eq);
  }
  *path = spec;
  std::string label = spec;
  const size_t slash = label.find_last_of('/');
  if (slash != std::string::npos && slash + 1 < label.size()) {
    label = label.substr(slash + 1);
  }
  if (label.rfind("BENCH_", 0) == 0) label = label.substr(6);
  if (label.size() > 5 &&
      label.compare(label.size() - 5, 5, ".json") == 0) {
    label = label.substr(0, label.size() - 5);
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> specs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    }
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
      if (out_path.empty()) {
        std::fprintf(stderr, "srp_bench_trend: --out needs a path\n");
        return 2;
      }
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "srp_bench_trend: unknown flag: %s\n", arg);
      PrintUsage(stderr);
      return 2;
    } else {
      specs.emplace_back(arg);
    }
  }
  if (specs.empty()) {
    PrintUsage(stderr);
    return 2;
  }

  std::vector<srp::benchdiff::TrendRun> runs;
  runs.reserve(specs.size());
  for (const std::string& spec : specs) {
    srp::benchdiff::TrendRun run;
    std::string path;
    run.label = LabelForArtifact(spec, &path);
    auto rows = srp::benchdiff::LoadBenchRows(path);
    if (!rows.ok()) {
      std::fprintf(stderr, "srp_bench_trend: %s: %s\n", path.c_str(),
                   rows.status().ToString().c_str());
      return 2;
    }
    run.rows = std::move(*rows);
    runs.push_back(std::move(run));
  }

  const srp::benchdiff::TrendTable table =
      srp::benchdiff::BuildTrendTable(runs);

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "srp_bench_trend: cannot open %s\n",
                   out_path.c_str());
      return 2;
    }
  }
  srp::benchdiff::PrintTrendMarkdown(table, out);
  if (out != stdout) std::fclose(out);
  return 0;
}
